//! Real-socket bindings of the sans-io cores.
//!
//! [`UdpBroker`] runs the [`broker::Broker`](crate::broker::Broker) on a background
//! thread over a `std::net::UdpSocket`; [`UdpClient`] is a blocking client
//! suitable for driving from an application or a transmitter thread. These
//! make the library usable outside the simulator — the integration tests
//! exercise full QoS 2 capture over loopback UDP.

use crate::broker::{wire, Broker, BrokerConfig, BrokerOutputs, BrokerStats};
use crate::client::{Client, ClientConfig, ClientEvent, Nanos, Output};
use crate::packet::{msg_type, Packet, PacketRef, QoS, TopicRef};
use crate::router::{shard_for_client, shard_for_key, SharedRouter};
use crate::shard::{ForwardFabric, ForwardFrame};
use crate::Error;
use crossbeam::queue::ArrayQueue;
use parking_lot::Mutex;
use rand::{rngs::StdRng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Direction of a datagram crossing a faulted transport seam.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDir {
    /// Arrived from the wire, about to be processed.
    Inbound,
    /// About to be written to the socket.
    Outbound,
}

/// What a fault plan decided to do with one datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatagramFate {
    /// Pass through untouched.
    Deliver,
    /// Drop silently — packet loss, or a partition when sustained.
    Drop,
    /// Deliver now and once more immediately after (duplication).
    Duplicate,
    /// Hold for the duration, then deliver. Later datagrams overtake a
    /// held one, so reordering falls out of delay for free.
    Delay(Duration),
}

/// The datagram fault-injection seam.
///
/// The trait lives here — next to the transports that consult it — rather
/// than in the chaos crate, for the same layering reason as
/// [`prov_wal::IoFault`]: `mqtt_sn` stays dependency-light while
/// `prov-chaos` implements the trait from a seeded, deterministic plan.
/// Production paths pass no fault and pay nothing; a faulted
/// [`UdpBroker::spawn_with_faults`] / [`UdpClient::set_fault`] transport
/// consults `fate` for every datagram in both directions.
///
/// Implementations are called from transport threads and must be
/// `Send + Sync`; determinism (for reproducible chaos runs) is the
/// implementor's contract, typically a seeded RNG behind a mutex.
pub trait DatagramFault: Send + Sync + std::fmt::Debug {
    /// Decides the fate of one datagram.
    fn fate(&self, dir: FaultDir, datagram: &[u8]) -> DatagramFate;
}

/// Datagrams held back by a [`DatagramFate::Delay`], with their release
/// deadlines.
type HeldFrames = Vec<(Instant, SocketAddr, Vec<u8>)>;

/// A broker bound to a UDP socket, served by a background thread.
pub struct UdpBroker {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    broker: Arc<Mutex<Broker<SocketAddr>>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl UdpBroker {
    /// Binds and starts serving. Use `"127.0.0.1:0"` to pick a free port.
    pub fn spawn(bind: impl ToSocketAddrs, config: BrokerConfig) -> io::Result<UdpBroker> {
        Self::spawn_inner(bind, Broker::new(config), None)
    }

    /// [`UdpBroker::spawn`] with a datagram fault-injection plan: every
    /// inbound and outbound datagram's fate (deliver / drop / duplicate /
    /// delay) is decided by `fault`. Chaos testing only — the faulted
    /// paths allocate where the production serve loop does not.
    pub fn spawn_with_faults(
        bind: impl ToSocketAddrs,
        config: BrokerConfig,
        fault: Arc<dyn DatagramFault>,
    ) -> io::Result<UdpBroker> {
        Self::spawn_inner(bind, Broker::new(config), Some(fault))
    }

    /// Binds and starts serving from a persisted broker snapshot (see
    /// [`UdpBroker::snapshot`]) — the restart path: durable sessions, topic
    /// registrations, and buffered messages survive the process boundary,
    /// the way RSMB's persistence file keeps gateway state across crashes.
    pub fn spawn_resuming(
        bind: impl ToSocketAddrs,
        mut state: Broker<SocketAddr>,
    ) -> io::Result<UdpBroker> {
        // The serving thread's monotonic clock restarts at zero; rebase the
        // snapshot's timers so retransmissions fire promptly.
        state.reset_clock();
        Self::spawn_inner(bind, state, None)
    }

    /// [`UdpBroker::spawn_resuming`] with a datagram fault-injection plan —
    /// lets a chaos harness keep the same fault schedule running across a
    /// kill-and-restart of the gateway.
    pub fn spawn_resuming_with_faults(
        bind: impl ToSocketAddrs,
        mut state: Broker<SocketAddr>,
        fault: Arc<dyn DatagramFault>,
    ) -> io::Result<UdpBroker> {
        state.reset_clock();
        Self::spawn_inner(bind, state, Some(fault))
    }

    /// Clones the full broker state for later resumption via
    /// [`UdpBroker::spawn_resuming`].
    ///
    /// The serve-loop mutex is held only for a single linear
    /// serialization pass ([`Broker::encode_state`]); the expensive part —
    /// rebuilding the per-session maps and buffers — happens outside the
    /// lock, so in-flight capture traffic is not stalled behind a deep
    /// clone of the whole gateway state.
    ///
    /// A fresh encode that fails to decode means the broker's state
    /// serialization is broken; the failure is surfaced as an error —
    /// counted in [`BrokerStats::snapshot_failures`] — rather than a
    /// panic inside whatever monitoring thread asked for the snapshot.
    pub fn snapshot(&self) -> Result<Broker<SocketAddr>, Error> {
        let bytes = self.broker.lock().encode_state();
        match Broker::decode_state(&bytes) {
            Ok(b) => Ok(b),
            Err(e) => {
                self.broker.lock().note_snapshot_failure();
                Err(Error::Malformed(e))
            }
        }
    }

    /// Serializes the current broker state to `path` — checksummed and
    /// written atomically (temp file + rename), so a crash mid-snapshot
    /// leaves the previous file intact. The durable form of
    /// [`UdpBroker::snapshot`]: call it periodically (or before a planned
    /// restart) and resume with [`UdpBroker::spawn_from_file`].
    pub fn snapshot_to_file(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        let bytes = self.broker.lock().encode_state();
        prov_wal::snapshot::write_atomic(path, &bytes)
    }

    /// Binds and starts serving from a snapshot file written by
    /// [`UdpBroker::snapshot_to_file`] — the restart path that survives
    /// gateway *process death*, not just an in-process handover. Corrupt
    /// or truncated snapshot files fail with
    /// [`io::ErrorKind::InvalidData`] rather than silently starting empty.
    pub fn spawn_from_file(
        bind: impl ToSocketAddrs,
        path: impl AsRef<std::path::Path>,
    ) -> io::Result<UdpBroker> {
        let bytes = prov_wal::snapshot::read(path)?;
        let state = Broker::decode_state(&bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Self::spawn_resuming(bind, state)
    }

    fn spawn_inner(
        bind: impl ToSocketAddrs,
        state: Broker<SocketAddr>,
        fault: Option<Arc<dyn DatagramFault>>,
    ) -> io::Result<UdpBroker> {
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(Duration::from_millis(10)))?;
        let local_addr = socket.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let broker = Arc::new(Mutex::with_rank(parking_lot::rank::BROKER, state));

        let thread = {
            let shutdown = Arc::clone(&shutdown);
            let broker = Arc::clone(&broker);
            std::thread::spawn(move || serve(&socket, &broker, &shutdown, fault.as_deref()))
        };

        Ok(UdpBroker {
            local_addr,
            shutdown,
            broker,
            thread: Some(thread),
        })
    }

    /// The bound address (to hand to clients).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of routing statistics.
    pub fn stats(&self) -> BrokerStats {
        *self.broker.lock().stats()
    }

    /// Current buffered-message backlog across all sessions — the input to
    /// the congestion watermarks. A lagging subscriber (e.g. a slow
    /// translator) shows up here first.
    pub fn backlog(&self) -> usize {
        self.broker.lock().backlog()
    }

    /// Current congestion level (0 clear / 1 soft / 2 hard) derived from
    /// the backlog watermarks.
    pub fn congestion_level(&self) -> u8 {
        self.broker.lock().congestion_level()
    }

    /// Stops the serving thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Stops the serving thread and returns the broker's *final* state —
    /// what a crash-consistent persistence layer would have observed at
    /// the instant of death.
    ///
    /// This differs from [`UdpBroker::snapshot`]-then-[`shutdown`]
    /// (`shutdown`: UdpBroker::shutdown) in one crucial way: a snapshot
    /// taken while the serve loop is still running rolls back any QoS 2
    /// handshake that completes between the snapshot and the shutdown, and
    /// the resumed broker then re-delivers those publishes to subscribers
    /// whose own dedup state has already been cleared — breaking
    /// exactly-once downstream. Capturing state *after* the loop stops
    /// closes that window, so kill/restart chaos harnesses use this.
    pub fn shutdown_into_state(mut self) -> Result<Broker<SocketAddr>, Error> {
        self.stop();
        self.snapshot()
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for UdpBroker {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Datagrams drained per wakeup before the broker lock is taken. Bounds
/// both the receive-buffer footprint and how long outbound traffic waits
/// behind a burst.
const SERVE_BATCH: usize = 32;
/// Receive-slot size: the largest datagram MQTT-SN over UDP can carry.
const SLOT: usize = 64 * 1024;

/// The serve loop: batched datagram I/O around the zero-alloc broker core.
///
/// One blocking `recv_from` (bounded by the 10 ms read timeout, so
/// shutdown and retransmission timers stay responsive) wakes the loop; the
/// socket is then drained non-blocking into per-slot buffers up to
/// [`SERVE_BATCH`]. The whole batch — plus any due timer tick — is
/// processed under a **single** broker lock acquisition through the
/// recycled [`BrokerOutputs`] buffer, and the outbound datagrams are
/// flushed after the lock is released. Steady state performs no per-packet
/// heap allocation and no per-subscriber re-encode.
fn serve(
    socket: &UdpSocket,
    broker: &Mutex<Broker<SocketAddr>>,
    shutdown: &AtomicBool,
    fault: Option<&dyn DatagramFault>,
) {
    let start = Instant::now();
    let mut rbuf = vec![0u8; SERVE_BATCH * SLOT];
    // (datagram length, sender) for receive slot `i`.
    let mut frames: Vec<(usize, SocketAddr)> = Vec::with_capacity(SERVE_BATCH);
    let mut out = BrokerOutputs::new();
    let mut pending_io_errors: u64 = 0;
    let mut last_tick = Instant::now();
    // Chaos-mode state: datagrams held back by an injected delay (both
    // directions) and the owned inbound batch after fate application.
    // All empty — and the fault branches never taken — in production.
    let mut held_in: HeldFrames = Vec::new();
    let mut held_out: HeldFrames = Vec::new();
    let mut chaos_in: Vec<(SocketAddr, Vec<u8>)> = Vec::new();
    // Whether the socket is still in non-blocking mode because a restore
    // after a batch drain failed. Left unrepaired, every "blocking" recv
    // below would return WouldBlock instantly and the loop would spin
    // hot; instead the restore is retried each iteration with a short
    // sleep standing in for the blocking wait until it succeeds.
    let mut nonblocking = false;
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        if nonblocking {
            if socket.set_nonblocking(false).is_ok() {
                nonblocking = false;
            } else {
                pending_io_errors += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        frames.clear();
        match socket.recv_from(&mut rbuf[..SLOT]) {
            Ok((n, from)) => frames.push((n, from)),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => {
                // Transient: on Linux an ICMP port-unreachable from one
                // departed client surfaces here as ECONNREFUSED — exiting
                // would kill the broker for everyone. Back off briefly and
                // keep serving; shutdown still exits via the flag.
                pending_io_errors += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        // A wake usually means a burst: drain whatever else has already
        // queued without blocking, up to the batch bound.
        if !frames.is_empty() && socket.set_nonblocking(true).is_ok() {
            nonblocking = true;
            while frames.len() < SERVE_BATCH {
                let slot = frames.len();
                match socket.recv_from(&mut rbuf[slot * SLOT..(slot + 1) * SLOT]) {
                    Ok((n, from)) => frames.push((n, from)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        pending_io_errors += 1;
                        break;
                    }
                }
            }
            if socket.set_nonblocking(false).is_ok() {
                nonblocking = false;
            }
        }
        let tick_due = last_tick.elapsed() >= Duration::from_millis(100);
        let held_pending = !held_in.is_empty() || !held_out.is_empty();
        if frames.is_empty() && !tick_due && pending_io_errors == 0 && !held_pending {
            continue;
        }
        if let Some(f) = fault {
            // Decide each arrival's fate before the broker lock, and
            // release datagrams whose injected delay has expired ahead of
            // this wakeup's arrivals (a released frame is older than
            // anything just read off the socket).
            chaos_in.clear();
            let now = Instant::now();
            let mut i = 0;
            while i < held_in.len() {
                if held_in[i].0 <= now {
                    let (_, from, bytes) = held_in.swap_remove(i);
                    chaos_in.push((from, bytes));
                } else {
                    i += 1;
                }
            }
            for (slot, &(len, from)) in frames.iter().enumerate() {
                let datagram = &rbuf[slot * SLOT..slot * SLOT + len];
                match f.fate(FaultDir::Inbound, datagram) {
                    DatagramFate::Deliver => chaos_in.push((from, datagram.to_vec())),
                    DatagramFate::Drop => {}
                    DatagramFate::Duplicate => {
                        chaos_in.push((from, datagram.to_vec()));
                        chaos_in.push((from, datagram.to_vec()));
                    }
                    DatagramFate::Delay(dur) => held_in.push((now + dur, from, datagram.to_vec())),
                }
            }
        }
        let now_ns = start.elapsed().as_nanos() as Nanos;
        {
            // One lock acquisition covers the whole batch plus any due
            // tick; decode errors are counted by the broker, transient
            // socket errors are folded in here.
            let mut b = broker.lock();
            if pending_io_errors > 0 {
                b.note_io_errors(pending_io_errors);
                pending_io_errors = 0;
            }
            if fault.is_some() {
                b.on_datagram_batch_into(
                    now_ns,
                    chaos_in.iter().map(|(from, bytes)| (*from, &bytes[..])),
                    &mut out,
                );
            } else {
                b.on_datagram_batch_into(
                    now_ns,
                    frames
                        .iter()
                        .enumerate()
                        .map(|(slot, &(len, from))| (from, &rbuf[slot * SLOT..slot * SLOT + len])),
                    &mut out,
                );
            }
            if tick_due {
                last_tick = Instant::now();
                b.on_tick_into(now_ns, &mut out);
            }
        }
        out.emit(
            |to, bytes| match fault.map(|f| f.fate(FaultDir::Outbound, bytes)) {
                None | Some(DatagramFate::Deliver) => {
                    if socket.send_to(bytes, *to).is_err() {
                        pending_io_errors += 1;
                    }
                }
                Some(DatagramFate::Drop) => {}
                Some(DatagramFate::Duplicate) => {
                    for _ in 0..2 {
                        if socket.send_to(bytes, *to).is_err() {
                            pending_io_errors += 1;
                        }
                    }
                }
                Some(DatagramFate::Delay(dur)) => {
                    held_out.push((Instant::now() + dur, *to, bytes.to_vec()));
                }
            },
        );
        out.clear();
        if !held_out.is_empty() {
            // Flush expired outbound delays; fate was already decided
            // when the datagram was held, so these send unconditionally.
            let now = Instant::now();
            let mut i = 0;
            while i < held_out.len() {
                if held_out[i].0 <= now {
                    let (_, to, bytes) = held_out.swap_remove(i);
                    if socket.send_to(&bytes, to).is_err() {
                        pending_io_errors += 1;
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded gateway
// ---------------------------------------------------------------------------

/// Slots per shard ingress ring and per directed cross-shard forwarding
/// ring. Bounded memory: a full ring is an accounted drop, never a block.
const SHARD_RING: usize = 1024;

/// Magic prefix of a sharded snapshot file (all-shards-atomic layout).
const SHARDED_SNAPSHOT_MAGIC: &[u8; 4] = b"PVSH";
/// Version byte of the sharded snapshot container format.
const SHARDED_SNAPSHOT_VERSION: u8 = 1;

/// One inbound datagram routed to a shard: the sender plus the bytes in
/// a recycled buffer.
#[derive(Debug)]
struct IngressFrame {
    from: SocketAddr,
    buf: Vec<u8>,
}

/// Bounded SPSC handoff from the routing front to one shard's serve
/// loop. Frames recycle through the companion free ring, so the steady
/// state moves datagrams from the socket to a shard without allocating.
#[derive(Debug)]
struct IngressRing {
    data: ArrayQueue<IngressFrame>,
    free: ArrayQueue<IngressFrame>,
    /// Datagrams the front could not enqueue (ring or pool exhausted);
    /// the owning shard folds these into [`BrokerStats::drops`].
    drops: AtomicU64,
    /// Transient socket errors observed by the front; the owning shard
    /// folds these into [`BrokerStats::io_errors`].
    io_errors: AtomicU64,
}

impl IngressRing {
    fn new(cap: usize) -> IngressRing {
        let ring = IngressRing {
            data: ArrayQueue::new(cap),
            free: ArrayQueue::new(cap),
            drops: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        };
        for _ in 0..cap {
            let _ = ring.free.push(IngressFrame {
                from: SocketAddr::from(([0, 0, 0, 0], 0)),
                buf: Vec::new(),
            });
        }
        ring
    }

    /// Front side: copies `bytes` into a recycled frame and enqueues it.
    /// A full ring is backpressure on one overloaded shard — the
    /// datagram is dropped and accounted, the front keeps serving the
    /// other shards.
    fn push(&self, from: SocketAddr, bytes: &[u8]) {
        // lint: zero-alloc-begin
        let Some(mut frame) = self.free.pop() else {
            self.drops.fetch_add(1, Ordering::Relaxed);
            return;
        };
        frame.from = from;
        frame.buf.clear();
        frame.buf.extend_from_slice(bytes);
        if let Err(frame) = self.data.push(frame) {
            let _ = self.free.push(frame);
            self.drops.fetch_add(1, Ordering::Relaxed);
        }
        // lint: zero-alloc-end
    }
}

/// An N-shard gateway over one UDP socket: a routing front thread plus
/// one serve loop per shard.
///
/// The front owns the socket's receive side and dispatches each datagram
/// to the shard that owns its sender (client-id hash, sniffed from
/// CONNECT — see [`shard_for_client`]). Each shard runs an independent
/// [`Broker`] behind its own lock, so publishes from clients on
/// different shards are processed genuinely in parallel; a publish whose
/// subscribers live on other shards crosses through the lock-free
/// [`ForwardFabric`] as a pre-encoded wire image. Topic-id assignment is
/// serialized through the [`SharedRouter`] (control plane only); the
/// per-publish hot path reads a cached, epoch-invalidated topic→shard
/// bitmask and never takes a global lock.
pub struct ShardedUdpBroker {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    brokers: Arc<Vec<Mutex<Broker<SocketAddr>>>>,
    router: Arc<SharedRouter>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ShardedUdpBroker {
    /// Binds and starts serving with `shards` shards (clamped to 1..=64).
    /// Use `"127.0.0.1:0"` to pick a free port.
    pub fn spawn(
        bind: impl ToSocketAddrs,
        shards: usize,
        config: BrokerConfig,
    ) -> io::Result<ShardedUdpBroker> {
        let shards = shards.clamp(1, 64);
        let states = (0..shards).map(|_| Broker::new(config.clone())).collect();
        Self::spawn_inner(bind, states, SharedRouter::new(shards), None)
    }

    /// [`ShardedUdpBroker::spawn`] with a datagram fault-injection plan.
    /// Inbound fates are decided once, at the routing front (before the
    /// datagram reaches any shard); outbound fates are decided by the
    /// sending shard's serve loop. Chaos testing only.
    pub fn spawn_with_faults(
        bind: impl ToSocketAddrs,
        shards: usize,
        config: BrokerConfig,
        fault: Arc<dyn DatagramFault>,
    ) -> io::Result<ShardedUdpBroker> {
        let shards = shards.clamp(1, 64);
        let states = (0..shards).map(|_| Broker::new(config.clone())).collect();
        Self::spawn_inner(bind, states, SharedRouter::new(shards), Some(fault))
    }

    /// Binds and starts serving from a sharded snapshot file written by
    /// [`ShardedUdpBroker::snapshot_to_file`]. The shard count comes
    /// from the file. Every per-shard section must decode before any
    /// shard starts serving: a partial or corrupt file fails with
    /// [`io::ErrorKind::InvalidData`] and no thread is spawned, rather
    /// than resuming a gateway with some shards silently empty.
    pub fn spawn_from_file(
        bind: impl ToSocketAddrs,
        path: impl AsRef<std::path::Path>,
    ) -> io::Result<ShardedUdpBroker> {
        Self::spawn_from_file_inner(bind, path, None)
    }

    /// [`ShardedUdpBroker::spawn_from_file`] with a fault plan — lets a
    /// chaos harness keep its fault schedule running across a
    /// kill-and-restart of the sharded gateway.
    pub fn spawn_from_file_with_faults(
        bind: impl ToSocketAddrs,
        path: impl AsRef<std::path::Path>,
        fault: Arc<dyn DatagramFault>,
    ) -> io::Result<ShardedUdpBroker> {
        Self::spawn_from_file_inner(bind, path, Some(fault))
    }

    fn spawn_from_file_inner(
        bind: impl ToSocketAddrs,
        path: impl AsRef<std::path::Path>,
        fault: Option<Arc<dyn DatagramFault>>,
    ) -> io::Result<ShardedUdpBroker> {
        let invalid = |e: &'static str| io::Error::new(io::ErrorKind::InvalidData, e);
        let bytes = prov_wal::snapshot::read(path)?;
        let mut r = wire::Reader::new(&bytes);
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = r.u8().map_err(invalid)?;
        }
        if &magic != SHARDED_SNAPSHOT_MAGIC {
            return Err(invalid("not a sharded snapshot"));
        }
        if r.u8().map_err(invalid)? != SHARDED_SNAPSHOT_VERSION {
            return Err(invalid("unknown sharded snapshot version"));
        }
        let shards = r.u8().map_err(invalid)? as usize;
        if !(1..=64).contains(&shards) {
            return Err(invalid("implausible shard count"));
        }
        let next_id = r.u16().map_err(invalid)?;
        let entry_count = r.u32().map_err(invalid)?;
        let mut entries = Vec::with_capacity(entry_count.min(1 << 16) as usize);
        for _ in 0..entry_count {
            let id = r.u16().map_err(invalid)?;
            let name = r.str().map_err(invalid)?;
            entries.push((id, name));
        }
        // Decode every shard section before any shard starts serving.
        let mut states = Vec::with_capacity(shards);
        for _ in 0..shards {
            let section = r.bytes().map_err(invalid)?;
            let mut state = Broker::decode_state(&section).map_err(invalid)?;
            state.reset_clock();
            states.push(state);
        }
        let router = SharedRouter::new(shards);
        router.seed_registry(next_id, entries.iter().map(|(id, n)| (*id, n.as_str())));
        Self::spawn_inner(bind, states, router, fault)
    }

    fn spawn_inner(
        bind: impl ToSocketAddrs,
        states: Vec<Broker<SocketAddr>>,
        router: SharedRouter,
        fault: Option<Arc<dyn DatagramFault>>,
    ) -> io::Result<ShardedUdpBroker> {
        let shards = states.len().max(1);
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(Duration::from_millis(10)))?;
        let local_addr = socket.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        // One Vec holds every shard's mutex: equal-rank broker locks are
        // acquired in index order, which inside a single allocation is
        // ascending address order — the pattern the debug lock-rank
        // tracker accepts for same-rank siblings.
        let brokers: Arc<Vec<Mutex<Broker<SocketAddr>>>> = Arc::new(
            states
                .into_iter()
                .map(|s| Mutex::with_rank(parking_lot::rank::BROKER, s))
                .collect(),
        );
        let router = Arc::new(router);
        let fabric = Arc::new(ForwardFabric::new(shards, SHARD_RING));
        let ingress: Arc<Vec<IngressRing>> =
            Arc::new((0..shards).map(|_| IngressRing::new(SHARD_RING)).collect());
        // Seed the router's per-shard filter unions from restored
        // sessions, so forwarding works before any new subscription.
        {
            let mut filters = Vec::new();
            for (i, b) in brokers.iter().enumerate() {
                b.lock().collect_subscription_filters(&mut filters);
                if !filters.is_empty() {
                    router.set_filters(i, &filters);
                }
            }
        }
        let mut threads = Vec::with_capacity(shards + 1);
        for idx in 0..shards {
            let wsock = socket.try_clone()?;
            let brokers = Arc::clone(&brokers);
            let router = Arc::clone(&router);
            let fabric = Arc::clone(&fabric);
            let ingress = Arc::clone(&ingress);
            let shutdown = Arc::clone(&shutdown);
            let fault = fault.clone();
            threads.push(std::thread::spawn(move || {
                serve_shard(
                    idx,
                    &wsock,
                    &brokers[idx],
                    &router,
                    &fabric,
                    &ingress[idx],
                    &shutdown,
                    fault.as_deref(),
                )
            }));
        }
        {
            let shutdown = Arc::clone(&shutdown);
            let ingress = Arc::clone(&ingress);
            threads.push(std::thread::spawn(move || {
                route_front(&socket, &ingress, &shutdown, fault.as_deref())
            }));
        }
        Ok(ShardedUdpBroker {
            local_addr,
            shutdown,
            brokers,
            router,
            threads,
        })
    }

    /// The bound address (to hand to clients).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of shards serving.
    pub fn shards(&self) -> usize {
        self.brokers.len()
    }

    /// Seeds a predefined topic (fixed id, agreed out of band) into the
    /// shared registry and every shard's local mirror. Returns false on
    /// an id or name conflict.
    pub fn register_predefined(&self, id: u16, name: &str) -> bool {
        if !self.router.register_predefined(id, name) {
            return false;
        }
        for broker in self.brokers.iter() {
            broker.lock().mirror_topic(id, name);
        }
        true
    }

    /// Merged routing statistics across all shards: counters sum,
    /// high-water marks take the per-shard maximum.
    pub fn stats(&self) -> BrokerStats {
        let mut merged = BrokerStats::default();
        for broker in self.brokers.iter() {
            merged.merge(broker.lock().stats());
        }
        merged
    }

    /// Per-shard routing statistics, indexed by shard.
    pub fn shard_stats(&self) -> Vec<BrokerStats> {
        self.brokers.iter().map(|b| *b.lock().stats()).collect()
    }

    /// Total buffered-message backlog across all shards.
    pub fn backlog(&self) -> usize {
        self.brokers.iter().map(|b| b.lock().backlog()).sum()
    }

    /// Per-shard buffered-message backlog, indexed by shard — the
    /// observability feed for spotting one hot shard behind a merged
    /// total that still looks healthy.
    pub fn shard_backlogs(&self) -> Vec<usize> {
        self.brokers.iter().map(|b| b.lock().backlog()).collect()
    }

    /// Worst congestion level over all shards (0 clear / 1 soft /
    /// 2 hard): admission control must react to the hottest shard, not
    /// the average.
    pub fn congestion_level(&self) -> u8 {
        self.brokers
            .iter()
            .map(|b| b.lock().congestion_level())
            .max()
            .unwrap_or(0)
    }

    /// The shard that owns `client_id` under this gateway's placement.
    pub fn shard_of(&self, client_id: &str) -> usize {
        shard_for_client(client_id, self.brokers.len())
    }

    /// Serializes all shards to `path` as one atomic snapshot file:
    /// every shard's broker lock is held (in index order) across the
    /// whole encode, so the per-shard sections are a single consistent
    /// cut — no shard's section can contain a publish whose cross-shard
    /// forward is missing from another's.
    pub fn snapshot_to_file(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        let (next_id, entries) = self.router.registry_snapshot();
        let mut out = Vec::new();
        out.extend_from_slice(SHARDED_SNAPSHOT_MAGIC);
        out.push(SHARDED_SNAPSHOT_VERSION);
        out.push(self.brokers.len() as u8);
        out.extend_from_slice(&next_id.to_le_bytes());
        out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (id, name) in &entries {
            out.extend_from_slice(&id.to_le_bytes());
            wire::put_str(&mut out, name);
        }
        {
            let guards: Vec<_> = self.brokers.iter().map(|b| b.lock()).collect();
            for guard in &guards {
                wire::put_bytes(&mut out, &guard.encode_state());
            }
        }
        prov_wal::snapshot::write_atomic(path, &out)
    }

    /// Stops every serve thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Stops every serve thread, then snapshots the final state to
    /// `path` — the sharded analogue of
    /// [`UdpBroker::shutdown_into_state`]: capturing after the loops
    /// stop closes the window where an in-flight QoS 2 handshake
    /// completes between snapshot and shutdown and gets re-delivered on
    /// resume.
    pub fn shutdown_to_file(mut self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        self.stop();
        self.snapshot_to_file(path)
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ShardedUdpBroker {
    fn drop(&mut self) {
        self.stop();
    }
}

impl UdpBroker {
    /// Sharded variant of [`UdpBroker::spawn`]: the same socket-facing
    /// contract served by `shards` parallel broker shards. See
    /// [`ShardedUdpBroker`].
    pub fn spawn_sharded(
        bind: impl ToSocketAddrs,
        shards: usize,
        config: BrokerConfig,
    ) -> io::Result<ShardedUdpBroker> {
        ShardedUdpBroker::spawn(bind, shards, config)
    }
}

/// The message-type byte of an MQTT-SN datagram (handles both 1- and
/// 3-byte length headers) — enough for the front to route on without a
/// full decode.
fn peek_type(buf: &[u8]) -> Option<u8> {
    match buf.first() {
        Some(0x01) => buf.get(3).copied(),
        Some(_) => buf.get(1).copied(),
        None => None,
    }
}

/// Fallback placement for a sender whose CONNECT the front never saw:
/// hash the transport address.
fn addr_shard(addr: &SocketAddr, shards: usize) -> usize {
    let mut key = [0u8; 18];
    let len = match addr {
        SocketAddr::V4(a) => {
            key[..4].copy_from_slice(&a.ip().octets());
            key[4..6].copy_from_slice(&a.port().to_le_bytes());
            6
        }
        SocketAddr::V6(a) => {
            key[..16].copy_from_slice(&a.ip().octets());
            key[16..18].copy_from_slice(&a.port().to_le_bytes());
            18
        }
    };
    shard_for_key(&key[..len], shards)
}

/// Routes one deliverable datagram to its owner shard. CONNECT pins the
/// sender's placement by client-id hash (so a durable session
/// reconnecting from a new address lands on the shard holding its
/// state); everything else follows the pinned placement, falling back
/// to an address hash for senders that never connected.
fn dispatch_frame(
    placement: &mut HashMap<SocketAddr, usize>,
    ingress: &[IngressRing],
    from: SocketAddr,
    bytes: &[u8],
) {
    let shards = ingress.len();
    let shard = if peek_type(bytes) == Some(msg_type::CONNECT) {
        let s = match Packet::decode(bytes) {
            Ok(Packet::Connect { client_id, .. }) => shard_for_client(&client_id, shards),
            _ => addr_shard(&from, shards),
        };
        placement.insert(from, s);
        s
    } else {
        match placement.get(&from) {
            Some(&s) => s,
            None => addr_shard(&from, shards),
        }
    };
    ingress[shard].push(from, bytes);
}

/// Applies the inbound fault fate (chaos only) and dispatches.
fn route_in(
    placement: &mut HashMap<SocketAddr, usize>,
    ingress: &[IngressRing],
    from: SocketAddr,
    bytes: &[u8],
    fault: Option<&dyn DatagramFault>,
    held_in: &mut HeldFrames,
) {
    match fault.map(|f| f.fate(FaultDir::Inbound, bytes)) {
        None | Some(DatagramFate::Deliver) => dispatch_frame(placement, ingress, from, bytes),
        Some(DatagramFate::Drop) => {}
        Some(DatagramFate::Duplicate) => {
            dispatch_frame(placement, ingress, from, bytes);
            dispatch_frame(placement, ingress, from, bytes);
        }
        Some(DatagramFate::Delay(dur)) => {
            held_in.push((Instant::now() + dur, from, bytes.to_vec()))
        }
    }
}

/// The routing front: owns the socket's receive side, sniffs CONNECTs
/// for client→shard placement, applies inbound chaos fates once, and
/// hands each datagram to its shard's ingress ring. No broker lock is
/// ever taken here — the front stays responsive even when one shard is
/// saturated.
fn route_front(
    socket: &UdpSocket,
    ingress: &[IngressRing],
    shutdown: &AtomicBool,
    fault: Option<&dyn DatagramFault>,
) {
    let mut rbuf = vec![0u8; SLOT];
    let mut placement: HashMap<SocketAddr, usize> = HashMap::new();
    let mut held_in: HeldFrames = Vec::new();
    let mut nonblocking = false;
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        if nonblocking {
            if socket.set_nonblocking(false).is_ok() {
                nonblocking = false;
            } else {
                ingress[0].io_errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        // Release expired injected delays ahead of this wakeup's
        // arrivals (a released frame is older than anything just read).
        if !held_in.is_empty() {
            let now = Instant::now();
            let mut i = 0;
            while i < held_in.len() {
                if held_in[i].0 <= now {
                    let (_, from, bytes) = held_in.swap_remove(i);
                    dispatch_frame(&mut placement, ingress, from, &bytes);
                } else {
                    i += 1;
                }
            }
        }
        match socket.recv_from(&mut rbuf) {
            Ok((len, from)) => {
                route_in(
                    &mut placement,
                    ingress,
                    from,
                    &rbuf[..len],
                    fault,
                    &mut held_in,
                );
                // A wake usually means a burst: drain it without
                // blocking, dispatching as we go.
                if socket.set_nonblocking(true).is_ok() {
                    nonblocking = true;
                    let mut budget = SERVE_BATCH - 1;
                    while budget > 0 {
                        match socket.recv_from(&mut rbuf) {
                            Ok((len, from)) => {
                                budget -= 1;
                                route_in(
                                    &mut placement,
                                    ingress,
                                    from,
                                    &rbuf[..len],
                                    fault,
                                    &mut held_in,
                                );
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(_) => {
                                ingress[0].io_errors.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    if socket.set_nonblocking(false).is_ok() {
                        nonblocking = false;
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => {
                ingress[0].io_errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Per-datagram routing info prefetched *before* the shard's broker lock
/// is taken: for a PUBLISH, the topic id, QoS, payload span within the
/// frame, and the cross-shard subscriber mask.
type PubPrep = Option<(u16, QoS, usize, usize, u64)>;

/// Pre-lock routing peek for one inbound datagram. Resolves topic names
/// through the shared router (control packets only — a write lock per
/// *new* name), prefetches the shard mask for publishes (shared read),
/// and flags packets that can change this shard's subscription-filter
/// union. Runs with **no** broker lock held, preserving the
/// router-before-broker lock order.
fn route_prep(
    frame: &IngressFrame,
    router: &SharedRouter,
    mirrors: &mut Vec<(u16, String)>,
    known: &HashSet<u16>,
    filters_dirty: &mut bool,
) -> PubPrep {
    let bytes = &frame.buf[..];
    match peek_type(bytes) {
        Some(msg_type::PUBLISH) => {
            if let Ok(PacketRef::Publish {
                qos,
                topic: TopicRef::Id(id) | TopicRef::Predefined(id),
                payload,
                ..
            }) = Packet::decode_borrowed(bytes)
            {
                let mask = router.shard_mask(id);
                let at = payload.as_ptr() as usize - bytes.as_ptr() as usize;
                Some((id, qos, at, payload.len(), mask))
            } else {
                None
            }
        }
        Some(msg_type::REGISTER) => {
            if let Ok(PacketRef::Owned(Packet::Register { topic_name, .. })) =
                Packet::decode_borrowed(bytes)
            {
                if let Some(id) = router.resolve(&topic_name) {
                    if !known.contains(&id) {
                        mirrors.push((id, topic_name));
                    }
                }
            }
            None
        }
        Some(msg_type::SUBSCRIBE) => {
            *filters_dirty = true;
            if let Ok(PacketRef::Owned(Packet::Subscribe {
                topic: TopicRef::Name(name),
                ..
            })) = Packet::decode_borrowed(bytes)
            {
                // A concrete-name subscription assigns a topic id in the
                // SUBACK; route the assignment through the shared
                // registry so every shard agrees on it. Wildcard filters
                // assign nothing.
                if crate::topic::name_is_valid(&name) {
                    if let Some(id) = router.resolve(&name) {
                        if !known.contains(&id) {
                            mirrors.push((id, name));
                        }
                    }
                }
            }
            None
        }
        Some(msg_type::UNSUBSCRIBE) | Some(msg_type::CONNECT) | Some(msg_type::DISCONNECT) => {
            *filters_dirty = true;
            None
        }
        _ => None,
    }
}

/// One shard's serve loop: drain the ingress ring and the incoming
/// forwarding rings, prefetch routing decisions with no lock held,
/// process everything under a **single** acquisition of this shard's
/// broker lock (cross-shard ring pushes are lock-free, so they happen
/// inside it), then flush the socket after unlock.
#[allow(clippy::too_many_arguments)]
fn serve_shard(
    idx: usize,
    socket: &UdpSocket,
    broker: &Mutex<Broker<SocketAddr>>,
    router: &SharedRouter,
    fabric: &ForwardFabric,
    ingress: &IngressRing,
    shutdown: &AtomicBool,
    fault: Option<&dyn DatagramFault>,
) {
    let start = Instant::now();
    let mut out = BrokerOutputs::new();
    let mut batch: Vec<IngressFrame> = Vec::with_capacity(SERVE_BATCH);
    let mut pubinfo: Vec<PubPrep> = Vec::with_capacity(SERVE_BATCH);
    let mut mirrors: Vec<(u16, String)> = Vec::new();
    let mut fwd_in: Vec<(usize, ForwardFrame)> = Vec::new();
    let mut filters: Vec<String> = Vec::new();
    let mut fwd_scratch: Vec<u8> = Vec::new();
    // Topic ids already mirrored into this shard's registry — lets the
    // pre-lock phase skip re-mirroring without peeking broker state.
    let mut known: HashSet<u16> = HashSet::new();
    let mut pending_io_errors: u64 = 0;
    let mut last_tick = Instant::now();
    let mut held_out: HeldFrames = Vec::new();
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        batch.clear();
        pubinfo.clear();
        mirrors.clear();
        while batch.len() < SERVE_BATCH {
            match ingress.data.pop() {
                Some(frame) => batch.push(frame),
                None => break,
            }
        }
        // Forwarded publishes from every other shard, producers visited
        // in ascending index order; bounded per wakeup like the batch.
        for from in 0..fabric.shards() {
            if from == idx {
                continue;
            }
            let ring = fabric.ring(from, idx);
            while fwd_in.len() < SERVE_BATCH {
                match ring.recv() {
                    Some(frame) => fwd_in.push((from, frame)),
                    None => break,
                }
            }
        }
        let tick_due = last_tick.elapsed() >= Duration::from_millis(100);
        let ring_drops = ingress.drops.swap(0, Ordering::Relaxed);
        pending_io_errors += ingress.io_errors.swap(0, Ordering::Relaxed);
        if batch.is_empty()
            && fwd_in.is_empty()
            && !tick_due
            && ring_drops == 0
            && pending_io_errors == 0
            && held_out.is_empty()
        {
            // Nothing to do: the front owns the blocking recv, so this
            // loop paces itself.
            std::thread::sleep(Duration::from_micros(200));
            continue;
        }
        // Pre-lock routing phase: router reads/writes finish (and the
        // router lock is *released*) before the broker lock is taken.
        let mut filters_dirty = false;
        for frame in &batch {
            pubinfo.push(route_prep(
                frame,
                router,
                &mut mirrors,
                &known,
                &mut filters_dirty,
            ));
        }
        for (_, frame) in &fwd_in {
            if !known.contains(&frame.topic_id) {
                if let Some(name) = router.name_of(frame.topic_id) {
                    mirrors.push((frame.topic_id, name));
                }
            }
        }
        let now_ns = start.elapsed().as_nanos() as Nanos;
        {
            let mut b = broker.lock();
            if pending_io_errors > 0 {
                b.note_io_errors(pending_io_errors);
                pending_io_errors = 0;
            }
            if ring_drops > 0 {
                b.note_ring_drops(ring_drops);
            }
            for (id, name) in mirrors.drain(..) {
                if b.mirror_topic(id, &name) {
                    known.insert(id);
                }
            }
            for (i, frame) in batch.iter().enumerate() {
                let routed = b.on_datagram_routed(now_ns, frame.from, &frame.buf, &mut out);
                if let (Ok(true), Some((tid, qos, at, len, mask))) = (routed, pubinfo[i]) {
                    // First receipt of a publish this shard accepted:
                    // encode once and fan the image into the rings of
                    // every shard with a matching subscription.
                    let payload = &frame.buf[at..at + len];
                    let outcome = fabric.forward(idx, mask, tid, qos, payload, &mut fwd_scratch);
                    for _ in 0..outcome.forwards {
                        b.note_cross_shard_forward(outcome.max_depth);
                    }
                    if outcome.drops > 0 {
                        b.note_ring_drops(outcome.drops);
                    }
                }
            }
            for (_, frame) in &fwd_in {
                b.deliver_forwarded(now_ns, frame.topic_id, frame.qos, frame.payload(), &mut out);
            }
            if tick_due {
                last_tick = Instant::now();
                b.on_tick_into(now_ns, &mut out);
            }
            if filters_dirty {
                b.collect_subscription_filters(&mut filters);
            }
        }
        // Publish the new filter union *before* flushing SUBACKs: a
        // client that publishes the instant its SUBACK arrives must
        // already be visible in every other shard's mask.
        if filters_dirty {
            router.set_filters(idx, &filters);
        }
        out.emit(
            |to, bytes| match fault.map(|f| f.fate(FaultDir::Outbound, bytes)) {
                None | Some(DatagramFate::Deliver) => {
                    if socket.send_to(bytes, *to).is_err() {
                        pending_io_errors += 1;
                    }
                }
                Some(DatagramFate::Drop) => {}
                Some(DatagramFate::Duplicate) => {
                    for _ in 0..2 {
                        if socket.send_to(bytes, *to).is_err() {
                            pending_io_errors += 1;
                        }
                    }
                }
                Some(DatagramFate::Delay(dur)) => {
                    held_out.push((Instant::now() + dur, *to, bytes.to_vec()));
                }
            },
        );
        out.clear();
        if !held_out.is_empty() {
            let now = Instant::now();
            let mut i = 0;
            while i < held_out.len() {
                if held_out[i].0 <= now {
                    let (_, to, bytes) = held_out.swap_remove(i);
                    if socket.send_to(&bytes, to).is_err() {
                        pending_io_errors += 1;
                    }
                } else {
                    i += 1;
                }
            }
        }
        // Recycle every frame so the next wakeup allocates nothing.
        for (from, frame) in fwd_in.drain(..) {
            fabric.ring(from, idx).recycle(frame);
        }
        for frame in batch.drain(..) {
            let _ = ingress.free.push(frame);
        }
    }
}

/// Errors from the blocking client.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(io::Error),
    /// Protocol-level failure.
    Protocol(Error),
    /// The expected response did not arrive in time.
    Timeout(&'static str),
}

impl NetError {
    /// Whether the failure is plausibly recoverable by retrying — the
    /// signature of a network partition or a broker mid-restart — as
    /// opposed to a fatal condition (protocol violation, permission
    /// error) that no amount of retrying fixes. [`UdpClient::reconnect`]
    /// keeps backing off on transient errors and aborts on fatal ones.
    pub fn is_transient(&self) -> bool {
        match self {
            // The expected response never arrived: partition or slow link.
            NetError::Timeout(_) => true,
            NetError::Io(e) => !matches!(
                e.kind(),
                io::ErrorKind::PermissionDenied
                    | io::ErrorKind::AddrInUse
                    | io::ErrorKind::AddrNotAvailable
                    | io::ErrorKind::InvalidInput
                    | io::ErrorKind::Unsupported
            ),
            // A congested broker asks the client to retry later (spec
            // return code 0x01); every other protocol error is fatal.
            NetError::Protocol(Error::Rejected(crate::packet::ReturnCode::Congestion)) => true,
            NetError::Protocol(_) => false,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}
impl From<Error> for NetError {
    fn from(e: Error) -> Self {
        NetError::Protocol(e)
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Protocol(e) => write!(f, "protocol error: {e}"),
            NetError::Timeout(what) => write!(f, "timed out waiting for {what}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Exponential-backoff schedule for [`UdpClient::reconnect`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReconnectPolicy {
    /// Delay before the second attempt (the first fires immediately).
    pub initial_backoff: Duration,
    /// Ceiling the doubling backoff saturates at.
    pub max_backoff: Duration,
    /// Attempts before giving up with the last transient error.
    pub max_attempts: u32,
    /// Per-attempt budget for the CONNECT handshake + session resumption.
    pub attempt_timeout: Duration,
    /// Jitter fraction in `[0, 1]`: each sleep is drawn uniformly from
    /// `[(1 − jitter)·backoff, (1 + jitter)·backoff]`. A restarted gateway
    /// otherwise sees every disconnected edge device's retry timer fire in
    /// lockstep — the reconnect stampede; jitter spreads the herd.
    pub jitter: f64,
    /// Overall wall-clock budget across all attempts, backoff sleeps
    /// included. `max_attempts` alone bounds give-up only indirectly — the
    /// worst case is `max_attempts × (attempt_timeout + max_backoff)`,
    /// which balloons when either knob is raised. With a budget, each
    /// attempt's timeout and each sleep are capped at the remaining
    /// budget and the loop gives up once it is spent, so the caller gets
    /// a predictable give-up window. `None` disables the budget.
    pub max_elapsed: Option<Duration>,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            initial_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
            max_attempts: 10,
            attempt_timeout: Duration::from_secs(2),
            jitter: 0.25,
            // Roomier than the default schedule's ~45 s worst case, so it
            // only trips when something (a stuck attempt, a raised knob)
            // would otherwise retry far past the point of usefulness.
            max_elapsed: Some(Duration::from_secs(60)),
        }
    }
}

impl ReconnectPolicy {
    /// Applies this policy's jitter to a backoff delay.
    pub fn jittered(&self, backoff: Duration, rng: &mut impl rand::Rng) -> Duration {
        jitter_backoff(backoff, self.jitter, rng)
    }
}

/// Spreads `backoff` uniformly over `[(1 − frac)·b, (1 + frac)·b]`.
/// `frac` is clamped to `[0, 1]`; `frac = 0` returns `backoff` unchanged.
pub fn jitter_backoff(backoff: Duration, frac: f64, rng: &mut impl rand::Rng) -> Duration {
    let frac = frac.clamp(0.0, 1.0);
    if frac == 0.0 {
        return backoff;
    }
    let unit: f64 = rng.gen(); // [0, 1)
    let factor = 1.0 - frac + 2.0 * frac * unit;
    Duration::from_nanos((backoff.as_nanos() as f64 * factor) as u64)
}

/// A cheap per-call entropy seed for backoff jitter: wall clock nanos mixed
/// with a process-wide counter, so simultaneous callers (the stampede case)
/// still draw distinct jitter streams. Not cryptographic.
pub fn entropy_seed() -> u64 {
    use std::sync::atomic::AtomicU64;
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    // splitmix-style avalanche so close timestamps diverge.
    let mut z = nanos ^ COUNTER.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A blocking MQTT-SN client over UDP.
pub struct UdpClient {
    socket: UdpSocket,
    broker: SocketAddr,
    client: Client,
    start: Instant,
    events: VecDeque<ClientEvent>,
    /// Reused for every outbound packet so the publish path does not
    /// allocate a fresh wire buffer per datagram.
    write_buf: Vec<u8>,
    /// Chaos seam (see [`UdpClient::set_fault`]); `None` in production.
    fault: Option<Arc<dyn DatagramFault>>,
    /// Datagrams held back by an injected delay, with release deadlines.
    held_in: Vec<(Instant, Vec<u8>)>,
    held_out: Vec<(Instant, Vec<u8>)>,
}

impl UdpClient {
    /// Connects to a broker, completing the CONNECT handshake.
    pub fn connect(
        broker: SocketAddr,
        config: ClientConfig,
        timeout: Duration,
    ) -> Result<UdpClient, NetError> {
        let socket = UdpSocket::bind("0.0.0.0:0")?;
        socket.connect(broker)?;
        socket.set_read_timeout(Some(Duration::from_millis(10)))?;
        let mut c = UdpClient {
            socket,
            broker,
            client: Client::new(config),
            start: Instant::now(),
            events: VecDeque::new(),
            write_buf: Vec::new(),
            fault: None,
            held_in: Vec::new(),
            held_out: Vec::new(),
        };
        let outputs = c.client.connect(c.now());
        c.dispatch(outputs)?;
        c.wait_for(timeout, "CONNACK", |e| {
            matches!(e, ClientEvent::Connected | ClientEvent::ConnectFailed(_))
        })
        .and_then(|e| match e {
            ClientEvent::Connected => Ok(()),
            ClientEvent::ConnectFailed(code) => Err(NetError::Protocol(Error::Rejected(code))),
            _ => Err(NetError::Timeout("CONNACK")),
        })?;
        Ok(c)
    }

    fn now(&self) -> Nanos {
        self.start.elapsed().as_nanos() as Nanos
    }

    /// Installs a datagram fault-injection plan: every subsequent inbound
    /// and outbound datagram's fate is decided by `fault` (see
    /// [`DatagramFault`]). The plan survives reconnects — a chaos schedule
    /// keeps applying across the very link flaps it induces. Chaos testing
    /// only; the faulted paths allocate where production does not.
    pub fn set_fault(&mut self, fault: Arc<dyn DatagramFault>) {
        self.fault = Some(fault);
    }

    fn dispatch(&mut self, outputs: Vec<Output>) -> Result<(), NetError> {
        for o in outputs {
            match o {
                Output::Send(p) => {
                    self.write_buf.clear();
                    p.encode_into(&mut self.write_buf);
                    self.send_write_buf()?;
                    // The packet's payload buffer is done (the state machine
                    // keeps its own copy for QoS 1/2 retransmission) — feed
                    // it back to the pool so QoS 0 publishes recycle too.
                    if let Packet::Publish { payload, .. } = p {
                        self.client.reclaim_payload(payload);
                    }
                }
                Output::Event(e) => self.events.push_back(e),
            }
        }
        Ok(())
    }

    /// Sends `write_buf`, subject to the installed fault plan (if any).
    fn send_write_buf(&mut self) -> Result<(), NetError> {
        let fate = match &self.fault {
            Some(f) => f.fate(FaultDir::Outbound, &self.write_buf),
            None => DatagramFate::Deliver,
        };
        match fate {
            DatagramFate::Deliver => {
                self.socket.send(&self.write_buf)?;
            }
            DatagramFate::Drop => {}
            DatagramFate::Duplicate => {
                self.socket.send(&self.write_buf)?;
                self.socket.send(&self.write_buf)?;
            }
            DatagramFate::Delay(dur) => {
                self.held_out
                    .push((Instant::now() + dur, self.write_buf.clone()));
            }
        }
        Ok(())
    }

    /// Releases datagrams whose injected delay has expired: held outbound
    /// frames are sent (their fate was decided when held), held inbound
    /// frames are fed to the state machine.
    fn release_held(&mut self) -> Result<(), NetError> {
        let due = Instant::now();
        let mut i = 0;
        while i < self.held_out.len() {
            if self.held_out[i].0 <= due {
                let (_, bytes) = self.held_out.swap_remove(i);
                self.socket.send(&bytes)?;
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.held_in.len() {
            if self.held_in[i].0 <= due {
                let (_, bytes) = self.held_in.swap_remove(i);
                let now = self.now();
                if let Ok(outputs) = self.client.on_datagram(&bytes, now) {
                    self.dispatch(outputs)?;
                }
            } else {
                i += 1;
            }
        }
        Ok(())
    }

    /// Pumps the socket once (bounded by the socket read timeout) and runs
    /// timers. Surfaced events accumulate in the internal queue.
    pub fn pump(&mut self) -> Result<(), NetError> {
        if self.fault.is_some() {
            self.release_held()?;
        }
        let mut buf = [0u8; 64 * 1024];
        match self.socket.recv(&mut buf) {
            Ok(n) => {
                let fate = match &self.fault {
                    Some(f) => f.fate(FaultDir::Inbound, &buf[..n]),
                    None => DatagramFate::Deliver,
                };
                let deliveries = match fate {
                    DatagramFate::Deliver => 1,
                    DatagramFate::Drop => 0,
                    DatagramFate::Duplicate => 2,
                    DatagramFate::Delay(dur) => {
                        self.held_in.push((Instant::now() + dur, buf[..n].to_vec()));
                        0
                    }
                };
                for _ in 0..deliveries {
                    let now = self.now();
                    // Borrowed decode: inbound PUBLISH payloads are copied
                    // once into a pooled buffer, not a fresh Vec (malformed
                    // datagrams are dropped, as before).
                    if let Ok(outputs) = self.client.on_datagram(&buf[..n], now) {
                        self.dispatch(outputs)?;
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(NetError::Io(e)),
        }
        let now = self.now();
        let outputs = self.client.on_tick(now);
        self.dispatch(outputs)?;
        Ok(())
    }

    /// Pops a queued event, pumping once if none is queued.
    pub fn poll_event(&mut self) -> Result<Option<ClientEvent>, NetError> {
        if let Some(e) = self.events.pop_front() {
            return Ok(Some(e));
        }
        self.pump()?;
        Ok(self.events.pop_front())
    }

    /// Pops a queued event without touching the socket (never blocks).
    pub fn pop_event(&mut self) -> Option<ClientEvent> {
        self.events.pop_front()
    }

    fn wait_for<F>(
        &mut self,
        timeout: Duration,
        what: &'static str,
        predicate: F,
    ) -> Result<ClientEvent, NetError>
    where
        F: Fn(&ClientEvent) -> bool,
    {
        let deadline = Instant::now() + timeout;
        let mut stash = VecDeque::new();
        loop {
            while let Some(e) = self.events.pop_front() {
                if predicate(&e) {
                    // Preserve unrelated events for later polls.
                    while let Some(s) = stash.pop_front() {
                        self.events.push_back(s);
                    }
                    return Ok(e);
                }
                stash.push_back(e);
            }
            if Instant::now() >= deadline {
                while let Some(s) = stash.pop_front() {
                    self.events.push_back(s);
                }
                return Err(NetError::Timeout(what));
            }
            self.pump()?;
        }
    }

    /// Registers a topic name, returning its broker-assigned id.
    pub fn register(&mut self, topic: &str, timeout: Duration) -> Result<u16, NetError> {
        let now = self.now();
        let (_, outputs) = self.client.register(topic, now)?;
        self.dispatch(outputs)?;
        let topic_owned = topic.to_owned();
        let e = self.wait_for(timeout, "REGACK", |e| {
            matches!(e, ClientEvent::Registered { topic_name, .. } if *topic_name == topic_owned)
        })?;
        match e {
            ClientEvent::Registered { topic_id, .. } => Ok(topic_id),
            _ => Err(NetError::Timeout("REGACK")),
        }
    }

    /// Subscribes to a filter; returns the assigned topic id (0 for
    /// wildcard filters).
    pub fn subscribe(
        &mut self,
        filter: &str,
        qos: QoS,
        timeout: Duration,
    ) -> Result<u16, NetError> {
        let now = self.now();
        let (msg_id, outputs) = self.client.subscribe(filter, qos, now)?;
        self.dispatch(outputs)?;
        let e = self.wait_for(
            timeout,
            "SUBACK",
            |e| matches!(e, ClientEvent::Subscribed { msg_id: m, .. } if *m == msg_id),
        )?;
        match e {
            ClientEvent::Subscribed { topic_id, .. } => Ok(topic_id),
            _ => Err(NetError::Timeout("SUBACK")),
        }
    }

    /// Publishes without waiting for QoS completion. Returns the message id
    /// (0 for QoS 0); completion surfaces later as
    /// [`ClientEvent::PublishDone`].
    pub fn publish_nowait(
        &mut self,
        topic_id: u16,
        payload: Vec<u8>,
        qos: QoS,
    ) -> Result<u16, NetError> {
        let now = self.now();
        let (msg_id, outputs) = self
            .client
            .publish(TopicRef::Id(topic_id), payload, qos, now)?;
        self.dispatch(outputs)?;
        Ok(msg_id)
    }

    /// Publishes without waiting, reporting transport trouble without
    /// losing the record: the returned flag is `false` when the initial
    /// transmission failed at the socket level — for QoS 1/2 the message
    /// is then still in-flight inside the state machine and retransmits
    /// once the link recovers. Only protocol-level refusal (bad state,
    /// full in-flight window) is an `Err`.
    pub fn publish_resilient(
        &mut self,
        topic_id: u16,
        payload: Vec<u8>,
        qos: QoS,
    ) -> Result<(u16, bool), Error> {
        let now = self.now();
        let (msg_id, outputs) = self
            .client
            .publish(TopicRef::Id(topic_id), payload, qos, now)?;
        let sent = self.dispatch(outputs).is_ok();
        Ok((msg_id, sent))
    }

    /// Publishes and, for QoS 1/2, blocks until the handshake completes.
    pub fn publish(
        &mut self,
        topic_id: u16,
        payload: Vec<u8>,
        qos: QoS,
        timeout: Duration,
    ) -> Result<(), NetError> {
        let msg_id = self.publish_nowait(topic_id, payload, qos)?;
        if qos == QoS::AtMostOnce {
            return Ok(());
        }
        self.wait_for(timeout, "publish completion", |e| {
            matches!(
                e,
                ClientEvent::PublishDone { msg_id: m }
                | ClientEvent::PublishFailed { msg_id: m }
                | ClientEvent::PublishRejected { msg_id: m, .. } if *m == msg_id
            )
        })
        .and_then(|e| match e {
            ClientEvent::PublishDone { .. } => Ok(()),
            ClientEvent::PublishRejected { code, .. } => {
                Err(NetError::Protocol(Error::Rejected(code)))
            }
            _ => Err(NetError::Timeout("publish acknowledged")),
        })
    }

    /// Waits for the next inbound application message.
    pub fn recv_message(&mut self, timeout: Duration) -> Result<(TopicRef, Vec<u8>), NetError> {
        let e = self.wait_for(timeout, "message", |e| {
            matches!(e, ClientEvent::Message { .. })
        })?;
        match e {
            ClientEvent::Message { topic, payload } => Ok((topic, payload)),
            _ => Err(NetError::Timeout("message")),
        }
    }

    /// Number of QoS 1/2 publishes still in flight.
    pub fn inflight_len(&self) -> usize {
        self.client.inflight_len()
    }

    /// Whether another QoS 1/2 publish fits the in-flight window.
    pub fn can_publish(&self) -> bool {
        self.client.can_publish()
    }

    /// Takes a reclaimed payload buffer from a completed publish (see
    /// [`Client::take_spare_payload`]).
    pub fn take_spare_payload(&mut self) -> Option<Vec<u8>> {
        self.client.take_spare_payload()
    }

    /// Returns an unused payload buffer to the reuse pool (see
    /// [`Client::reclaim_payload`]).
    pub fn reclaim_payload(&mut self, payload: Vec<u8>) {
        self.client.reclaim_payload(payload);
    }

    /// Graceful disconnect (best effort).
    pub fn disconnect(&mut self) -> Result<(), NetError> {
        let now = self.now();
        let outputs = self.client.disconnect(now);
        self.dispatch(outputs)?;
        Ok(())
    }

    /// Current connection state of the underlying state machine.
    pub fn state(&self) -> crate::ClientState {
        self.client.state()
    }

    /// Broker-assigned id of a topic registered in this (or a resumed)
    /// session. After a reconnect across a broker restart the id may
    /// differ from the one the original [`UdpClient::register`] returned.
    pub fn topic_id(&self, topic_name: &str) -> Option<u16> {
        self.client.topic_id(topic_name)
    }

    /// Drains payloads of publishes that exhausted retries or were
    /// rejected by the broker (see [`Client::take_dead_letters`]).
    pub fn take_dead_letters(&mut self) -> Vec<(u16, Vec<u8>)> {
        self.client.take_dead_letters()
    }

    /// One reconnection attempt: rebinds a fresh socket to the original
    /// broker address and runs the CONNECT handshake with
    /// `clean_session = false`, waiting until session resumption (topic
    /// re-registration, in-flight retransmission) completes. Queued
    /// application events are preserved across the attempt.
    pub fn try_reconnect(&mut self, timeout: Duration) -> Result<(), NetError> {
        let socket = UdpSocket::bind("0.0.0.0:0")?;
        socket.connect(self.broker)?;
        socket.set_read_timeout(Some(Duration::from_millis(10)))?;
        self.socket = socket;
        let now = self.now();
        let outputs = self.client.reconnect(now);
        self.dispatch(outputs)?;
        let deadline = Instant::now() + timeout;
        self.wait_for(timeout, "reconnect CONNACK", |e| {
            matches!(e, ClientEvent::Connected | ClientEvent::ConnectFailed(_))
        })
        .and_then(|e| match e {
            ClientEvent::Connected => Ok(()),
            ClientEvent::ConnectFailed(code) => Err(NetError::Protocol(Error::Rejected(code))),
            _ => Err(NetError::Timeout("reconnect CONNACK")),
        })?;
        while !self.client.resume_complete() {
            if Instant::now() >= deadline {
                return Err(NetError::Timeout("session resumption"));
            }
            self.pump()?;
        }
        Ok(())
    }

    /// Reconnects with exponential backoff, distinguishing transient
    /// failures (partition, broker mid-restart — retried with a doubling
    /// delay) from fatal ones (protocol rejection, local configuration —
    /// surfaced immediately). Gives up when either `max_attempts` or the
    /// overall `max_elapsed` budget is exhausted, whichever comes first.
    /// Returns the number of attempts on success.
    pub fn reconnect(&mut self, policy: &ReconnectPolicy) -> Result<u32, NetError> {
        let started = Instant::now();
        let mut backoff = policy.initial_backoff;
        let mut rng = StdRng::seed_from_u64(entropy_seed());
        let mut last: Option<NetError> = None;
        for attempt in 1..=policy.max_attempts.max(1) {
            // The first attempt always runs (possibly with a trimmed
            // timeout); later ones only while budget remains.
            let attempt_timeout = match policy.max_elapsed {
                Some(budget) => {
                    let remaining = budget.saturating_sub(started.elapsed());
                    if attempt > 1 && remaining.is_zero() {
                        break;
                    }
                    policy
                        .attempt_timeout
                        .min(remaining.max(Duration::from_millis(1)))
                }
                None => policy.attempt_timeout,
            };
            match self.try_reconnect(attempt_timeout) {
                Ok(()) => return Ok(attempt),
                Err(e) if !e.is_transient() => return Err(e),
                Err(e) => last = Some(e),
            }
            if attempt < policy.max_attempts.max(1) {
                let mut sleep = policy.jittered(backoff, &mut rng);
                if let Some(budget) = policy.max_elapsed {
                    let remaining = budget.saturating_sub(started.elapsed());
                    if remaining.is_zero() {
                        break;
                    }
                    sleep = sleep.min(remaining);
                }
                std::thread::sleep(sleep);
                backoff = (backoff * 2).min(policy.max_backoff);
            }
        }
        Err(last.unwrap_or(NetError::Timeout("reconnect")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeout() -> Duration {
        Duration::from_secs(5)
    }

    #[test]
    fn end_to_end_qos2_over_loopback() {
        let broker = UdpBroker::spawn("127.0.0.1:0", BrokerConfig::default()).unwrap();
        let addr = broker.local_addr();

        let mut sub = UdpClient::connect(addr, ClientConfig::new("subscriber"), timeout()).unwrap();
        sub.subscribe("prov/#", QoS::ExactlyOnce, timeout())
            .unwrap();

        let mut publisher =
            UdpClient::connect(addr, ClientConfig::new("publisher"), timeout()).unwrap();
        let tid = publisher.register("prov/dev1", timeout()).unwrap();
        publisher
            .publish(
                tid,
                b"hello provenance".to_vec(),
                QoS::ExactlyOnce,
                timeout(),
            )
            .unwrap();

        let (topic, payload) = sub.recv_message(timeout()).unwrap();
        assert_eq!(payload, b"hello provenance");
        assert!(matches!(topic, TopicRef::Id(_)));
        assert_eq!(publisher.inflight_len(), 0);

        let stats = broker.stats();
        assert_eq!(stats.publishes_in, 1);
        assert_eq!(stats.publishes_out, 1);
        broker.shutdown();
    }

    #[test]
    fn multiple_publishers_fan_into_one_subscriber() {
        let broker = UdpBroker::spawn("127.0.0.1:0", BrokerConfig::default()).unwrap();
        let addr = broker.local_addr();
        let mut sub = UdpClient::connect(addr, ClientConfig::new("sub"), timeout()).unwrap();
        sub.subscribe("wf/+", QoS::AtLeastOnce, timeout()).unwrap();

        for i in 0..3 {
            let mut p =
                UdpClient::connect(addr, ClientConfig::new(format!("pub{i}")), timeout()).unwrap();
            let tid = p.register(&format!("wf/dev{i}"), timeout()).unwrap();
            p.publish(tid, vec![i as u8], QoS::AtLeastOnce, timeout())
                .unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..3 {
            let (_, payload) = sub.recv_message(timeout()).unwrap();
            got.push(payload[0]);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn qos0_publish_recycles_payload_buffer() {
        let broker = UdpBroker::spawn("127.0.0.1:0", BrokerConfig::default()).unwrap();
        let mut c =
            UdpClient::connect(broker.local_addr(), ClientConfig::new("q0"), timeout()).unwrap();
        let tid = c.register("t/q0", timeout()).unwrap();
        assert!(c.take_spare_payload().is_none());
        c.publish(tid, vec![1, 2, 3], QoS::AtMostOnce, timeout())
            .unwrap();
        let spare = c
            .take_spare_payload()
            .expect("QoS 0 payload buffer returns to the pool");
        assert!(spare.is_empty() && spare.capacity() >= 3);
        broker.shutdown();
    }

    #[test]
    fn neterror_transient_classification() {
        assert!(NetError::Timeout("x").is_transient());
        assert!(NetError::Io(io::Error::from(io::ErrorKind::ConnectionRefused)).is_transient());
        assert!(NetError::Io(io::Error::from(io::ErrorKind::ConnectionReset)).is_transient());
        assert!(!NetError::Io(io::Error::from(io::ErrorKind::PermissionDenied)).is_transient());
        assert!(
            NetError::Protocol(Error::Rejected(crate::packet::ReturnCode::Congestion))
                .is_transient()
        );
        assert!(
            !NetError::Protocol(Error::Rejected(crate::packet::ReturnCode::NotSupported))
                .is_transient()
        );
        assert!(!NetError::Protocol(Error::BadState("x")).is_transient());
    }

    #[test]
    fn reconnect_resumes_session_across_broker_restart() {
        let broker = UdpBroker::spawn("127.0.0.1:0", BrokerConfig::default()).unwrap();
        let addr = broker.local_addr();

        let mut sub = UdpClient::connect(addr, ClientConfig::new("rsub"), timeout()).unwrap();
        sub.subscribe("re/#", QoS::AtLeastOnce, timeout()).unwrap();
        let mut publisher = UdpClient::connect(addr, ClientConfig::new("rpub"), timeout()).unwrap();
        let tid = publisher.register("re/dev1", timeout()).unwrap();
        publisher
            .publish(tid, vec![1], QoS::AtLeastOnce, timeout())
            .unwrap();
        sub.recv_message(timeout()).unwrap();

        // Kill the broker, preserving its state; rebind the same port.
        let snapshot = broker.snapshot().expect("snapshot round-trips");
        broker.shutdown();
        let broker = UdpBroker::spawn_resuming(addr, snapshot).unwrap();

        // Both sides reconnect with backoff; sessions resume (the
        // subscriber's subscription and the publisher's registration both
        // survive without re-issuing them).
        let policy = ReconnectPolicy {
            initial_backoff: Duration::from_millis(50),
            attempt_timeout: Duration::from_secs(1),
            ..ReconnectPolicy::default()
        };
        sub.reconnect(&policy).unwrap();
        let attempts = publisher.reconnect(&policy).unwrap();
        assert!(attempts >= 1);
        let new_tid = publisher.topic_id("re/dev1").expect("registration resumed");

        publisher
            .publish(new_tid, vec![2], QoS::AtLeastOnce, timeout())
            .unwrap();
        let (_, payload) = sub.recv_message(timeout()).unwrap();
        assert_eq!(payload, vec![2]);
        broker.shutdown();
    }

    #[test]
    fn reconnect_backs_off_until_broker_returns() {
        let broker = UdpBroker::spawn("127.0.0.1:0", BrokerConfig::default()).unwrap();
        let addr = broker.local_addr();
        let mut client = UdpClient::connect(addr, ClientConfig::new("bk"), timeout()).unwrap();
        client.register("bk/t", timeout()).unwrap();
        let snapshot = broker.snapshot().expect("snapshot round-trips");
        broker.shutdown();

        // Bring the broker back only after a delay: early attempts must
        // fail transiently and the backoff loop must ride them out.
        let restarter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            UdpBroker::spawn_resuming(addr, snapshot).unwrap()
        });
        let attempts = client
            .reconnect(&ReconnectPolicy {
                initial_backoff: Duration::from_millis(100),
                max_backoff: Duration::from_millis(400),
                max_attempts: 20,
                attempt_timeout: Duration::from_millis(500),
                ..ReconnectPolicy::default()
            })
            .unwrap();
        assert!(
            attempts >= 2,
            "expected early attempts to fail, got {attempts}"
        );
        let broker = restarter.join().unwrap();
        assert_eq!(client.state(), crate::ClientState::Connected);
        broker.shutdown();
    }

    #[test]
    fn jittered_backoff_stays_within_the_window() {
        let mut rng = StdRng::seed_from_u64(7);
        let policy = ReconnectPolicy {
            jitter: 0.25,
            ..ReconnectPolicy::default()
        };
        let base = Duration::from_millis(1000);
        let (lo, hi) = (Duration::from_millis(750), Duration::from_millis(1250));
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..1000 {
            let d = policy.jittered(base, &mut rng);
            assert!(d >= lo && d <= hi, "jitter out of window: {d:?}");
            distinct.insert(d);
        }
        assert!(
            distinct.len() > 100,
            "jitter not spreading: {}",
            distinct.len()
        );
        // frac = 0 disables jitter; out-of-range fractions are clamped.
        assert_eq!(jitter_backoff(base, 0.0, &mut rng), base);
        for _ in 0..100 {
            let d = jitter_backoff(base, 7.5, &mut rng);
            assert!(d <= Duration::from_millis(2000), "clamp failed: {d:?}");
        }
        // Two devices that disconnect at the same instant draw different
        // jitter streams (the stampede case entropy_seed exists for).
        assert_ne!(entropy_seed(), entropy_seed());
    }

    #[test]
    fn broker_restarts_from_snapshot_file() {
        let dir = std::env::temp_dir().join(format!("mqtt-sn-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broker.snap");

        let broker = UdpBroker::spawn("127.0.0.1:0", BrokerConfig::default()).unwrap();
        let addr = broker.local_addr();
        let mut sub = UdpClient::connect(addr, ClientConfig::new("fsub"), timeout()).unwrap();
        sub.subscribe("fs/#", QoS::AtLeastOnce, timeout()).unwrap();
        let mut publisher = UdpClient::connect(addr, ClientConfig::new("fpub"), timeout()).unwrap();
        let tid = publisher.register("fs/dev1", timeout()).unwrap();
        publisher
            .publish(tid, vec![1], QoS::AtLeastOnce, timeout())
            .unwrap();
        sub.recv_message(timeout()).unwrap();

        // Persist to disk, kill the process's broker, restart FROM THE FILE.
        broker.snapshot_to_file(&path).unwrap();
        broker.shutdown();
        let broker = UdpBroker::spawn_from_file(addr, &path).unwrap();

        let policy = ReconnectPolicy {
            initial_backoff: Duration::from_millis(50),
            attempt_timeout: Duration::from_secs(1),
            ..ReconnectPolicy::default()
        };
        sub.reconnect(&policy).unwrap();
        publisher.reconnect(&policy).unwrap();
        // Both the registration and the subscription survived the file trip.
        let new_tid = publisher
            .topic_id("fs/dev1")
            .expect("registration persisted");
        publisher
            .publish(new_tid, vec![2], QoS::AtLeastOnce, timeout())
            .unwrap();
        let (_, payload) = sub.recv_message(timeout()).unwrap();
        assert_eq!(payload, vec![2]);
        broker.shutdown();

        // A corrupt snapshot is refused, not silently started empty.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = UdpBroker::spawn_from_file("127.0.0.1:0", &path)
            .err()
            .expect("corrupt snapshot must be refused");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn broker_survives_icmp_unreachable_from_departed_client() {
        let broker = UdpBroker::spawn(
            "127.0.0.1:0",
            BrokerConfig {
                retry_timeout: Duration::from_millis(100),
                ..BrokerConfig::default()
            },
        )
        .unwrap();
        let addr = broker.local_addr();
        // A QoS 1 subscriber that vanishes without disconnecting: broker
        // retransmissions to its dead port can bounce back as ICMP
        // port-unreachable (ECONNREFUSED on Linux).
        {
            let mut sub = UdpClient::connect(addr, ClientConfig::new("ghost"), timeout()).unwrap();
            sub.subscribe("g/#", QoS::AtLeastOnce, timeout()).unwrap();
        } // socket dropped here, no DISCONNECT sent
        let mut publisher =
            UdpClient::connect(addr, ClientConfig::new("alive"), timeout()).unwrap();
        let tid = publisher.register("g/t", timeout()).unwrap();
        publisher
            .publish(tid, vec![1], QoS::AtLeastOnce, timeout())
            .unwrap();
        // Let several retransmissions to the dead port happen.
        std::thread::sleep(Duration::from_millis(400));
        // The broker must still serve new clients.
        let mut check = UdpClient::connect(addr, ClientConfig::new("check"), timeout()).unwrap();
        assert!(check.register("g/ok", timeout()).is_ok());
        broker.shutdown();
    }

    #[test]
    fn garbage_datagrams_are_counted_not_swallowed() {
        let broker = UdpBroker::spawn("127.0.0.1:0", BrokerConfig::default()).unwrap();
        let addr = broker.local_addr();
        let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
        raw.send_to(b"\xde\xad\xbe\xef not mqtt-sn", addr).unwrap();
        raw.send_to(&[0x05, 0x0c, 0x00], addr).unwrap(); // length mismatch

        let deadline = Instant::now() + timeout();
        while broker.stats().decode_errors < 2 {
            assert!(
                Instant::now() < deadline,
                "decode errors never surfaced: {:?}",
                broker.stats()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(broker.stats().decode_errors, 2);
        // The broker still serves well-formed traffic afterwards.
        let mut c = UdpClient::connect(addr, ClientConfig::new("ok"), timeout()).unwrap();
        assert!(c.register("g/after", timeout()).is_ok());
        broker.shutdown();
    }

    #[test]
    fn snapshot_does_not_stall_capture_traffic() {
        let broker = UdpBroker::spawn(
            "127.0.0.1:0",
            BrokerConfig {
                max_buffered: 1 << 14,
                ..BrokerConfig::default()
            },
        )
        .unwrap();
        let addr = broker.local_addr();

        // Inflate the broker state: a durable subscriber goes away and
        // accumulates a deep buffered backlog, the expensive thing a
        // snapshot has to serialize.
        {
            let mut away = UdpClient::connect(
                addr,
                ClientConfig {
                    clean_session: false,
                    ..ClientConfig::new("away")
                },
                timeout(),
            )
            .unwrap();
            away.subscribe("snap/bulk", QoS::AtLeastOnce, timeout())
                .unwrap();
            away.disconnect().unwrap();
        }
        let mut feeder = UdpClient::connect(addr, ClientConfig::new("feeder"), timeout()).unwrap();
        let bulk_tid = feeder.register("snap/bulk", timeout()).unwrap();
        for _ in 0..512 {
            feeder
                .publish(bulk_tid, vec![0x77; 4096], QoS::AtLeastOnce, timeout())
                .unwrap();
        }

        // Hammer snapshots from another thread while measuring publish
        // round-trip latency.
        let stop = Arc::new(AtomicBool::new(false));
        let broker = Arc::new(broker);
        let snapper = {
            let stop = Arc::clone(&stop);
            let broker = Arc::clone(&broker);
            std::thread::spawn(move || {
                let mut snapshots = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let snap = broker.snapshot().expect("snapshot round-trips");
                    assert!(snap.session_count() >= 1);
                    snapshots += 1;
                }
                snapshots
            })
        };

        let mut worst = Duration::ZERO;
        let tid = feeder.register("snap/live", timeout()).unwrap();
        for _ in 0..50 {
            let t = Instant::now();
            feeder
                .publish(tid, vec![1; 32], QoS::AtLeastOnce, timeout())
                .unwrap();
            worst = worst.max(t.elapsed());
        }
        stop.store(true, Ordering::Relaxed);
        let snapshots = snapper.join().unwrap();
        assert!(snapshots > 0, "snapshot thread never ran");
        // Generous CI bound: the serve loop must never sit behind a deep
        // state clone. (The pre-fix deep-clone-under-lock implementation
        // is what this guards against regressing to.)
        assert!(
            worst < Duration::from_secs(1),
            "publish latency spiked to {worst:?} across concurrent snapshots"
        );
    }

    #[test]
    fn connect_to_dead_broker_times_out() {
        // Bind a socket and drop it so nothing answers.
        let dead = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = dead.local_addr().unwrap();
        drop(dead);
        let err = UdpClient::connect(
            addr,
            ClientConfig::new("nobody"),
            Duration::from_millis(200),
        )
        .err()
        .expect("must fail");
        assert!(matches!(err, NetError::Timeout(_) | NetError::Io(_)));
    }

    #[test]
    fn reconnect_gives_up_within_elapsed_budget() {
        let broker = UdpBroker::spawn("127.0.0.1:0", BrokerConfig::default()).unwrap();
        let mut client =
            UdpClient::connect(broker.local_addr(), ClientConfig::new("budget"), timeout())
                .unwrap();
        broker.shutdown();
        // Effectively unbounded attempts: without the elapsed budget this
        // policy would retry for minutes against the dead address.
        let budget = Duration::from_millis(400);
        let policy = ReconnectPolicy {
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(100),
            max_attempts: u32::MAX,
            attempt_timeout: Duration::from_millis(100),
            jitter: 0.25,
            max_elapsed: Some(budget),
        };
        let started = Instant::now();
        let err = client
            .reconnect(&policy)
            .expect_err("no broker: must give up");
        let elapsed = started.elapsed();
        assert!(err.is_transient(), "gave up on a transient error: {err}");
        // Pin the give-up window: never before the budget is spent, and
        // not much after it (at most one trailing attempt's timeout, plus
        // generous CI slack).
        assert!(
            elapsed >= budget,
            "gave up after {elapsed:?}, budget {budget:?}"
        );
        assert!(
            elapsed < budget + Duration::from_secs(2),
            "kept retrying long past the budget: {elapsed:?}"
        );
    }

    /// Scripted deterministic fault: drops every datagram (both
    /// directions) whose index is in the configured drop list.
    #[derive(Debug)]
    struct DropNth {
        next: std::sync::atomic::AtomicU64,
        drop: Vec<u64>,
    }

    impl DatagramFault for DropNth {
        fn fate(&self, dir: FaultDir, _datagram: &[u8]) -> DatagramFate {
            if dir != FaultDir::Inbound {
                return DatagramFate::Deliver;
            }
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if self.drop.contains(&i) {
                DatagramFate::Drop
            } else {
                DatagramFate::Deliver
            }
        }
    }

    #[test]
    fn qos1_publish_survives_injected_datagram_loss() {
        // Drop the broker's first sight of the PUBLISH (inbound datagram
        // index 4: CONNECT, REGISTER ×2 clients... the exact index does
        // not matter — drop a window and let retransmission win).
        let fault = Arc::new(DropNth {
            next: std::sync::atomic::AtomicU64::new(0),
            drop: vec![4, 5],
        });
        let config = BrokerConfig {
            retry_timeout: Duration::from_millis(200), // keep the test fast
            ..BrokerConfig::default()
        };
        let broker = UdpBroker::spawn_with_faults("127.0.0.1:0", config, fault).unwrap();
        let addr = broker.local_addr();
        let mut sub = UdpClient::connect(addr, ClientConfig::new("sub"), timeout()).unwrap();
        sub.subscribe("f/#", QoS::AtLeastOnce, timeout()).unwrap();
        let mut pub_cfg = ClientConfig::new("pub");
        pub_cfg.retry_timeout = Duration::from_millis(200);
        let mut publisher = UdpClient::connect(addr, pub_cfg, timeout()).unwrap();
        let tid = publisher.register("f/dev", timeout()).unwrap();
        publisher
            .publish(tid, b"lossy".to_vec(), QoS::AtLeastOnce, timeout())
            .unwrap();
        let (_, payload) = sub.recv_message(timeout()).unwrap();
        assert_eq!(payload, b"lossy");
    }

    /// A client id hashing to a different shard than `other`, by probing
    /// `base0`, `base1`, ... — placement is pure, so the probe is cheap.
    fn client_on_other_shard(base: &str, other: &str, shards: usize) -> String {
        for i in 0..256 {
            let candidate = format!("{base}{i}");
            if shard_for_client(&candidate, shards) != shard_for_client(other, shards) {
                return candidate;
            }
        }
        panic!("no client id off {other}'s shard in 256 probes");
    }

    /// Like [`client_on_other_shard`] but for co-located placement.
    fn client_on_same_shard(base: &str, other: &str, shards: usize) -> String {
        for i in 0..256 {
            let candidate = format!("{base}{i}");
            if shard_for_client(&candidate, shards) == shard_for_client(other, shards) {
                return candidate;
            }
        }
        panic!("no client id on {other}'s shard in 256 probes");
    }

    #[test]
    fn sharded_gateway_forwards_across_shards() {
        let gw = UdpBroker::spawn_sharded("127.0.0.1:0", 4, BrokerConfig::default()).unwrap();
        assert_eq!(gw.shards(), 4);
        let addr = gw.local_addr();

        let mut sub = UdpClient::connect(addr, ClientConfig::new("collector"), timeout()).unwrap();
        sub.subscribe("sh/#", QoS::AtLeastOnce, timeout()).unwrap();

        let pub_id = client_on_other_shard("xdev", "collector", 4);
        let mut publisher =
            UdpClient::connect(addr, ClientConfig::new(pub_id.clone()), timeout()).unwrap();
        let tid = publisher.register("sh/dev", timeout()).unwrap();
        publisher
            .publish(tid, b"edge-record".to_vec(), QoS::AtLeastOnce, timeout())
            .unwrap();
        let (topic, payload) = sub.recv_message(timeout()).unwrap();
        assert_eq!(payload, b"edge-record");
        assert_eq!(topic, TopicRef::Id(tid));

        let merged = gw.stats();
        assert_eq!(merged.publishes_in, 1);
        assert_eq!(merged.publishes_out, 1);
        assert_eq!(merged.cross_shard_forwards, 1);
        assert!(merged.forward_ring_high_water >= 1);
        assert_eq!(merged.drops, 0);
        // The split is visible per shard: the publisher's shard took the
        // publish in, the collector's shard fanned it out.
        let per_shard = gw.shard_stats();
        assert_eq!(per_shard[gw.shard_of(&pub_id)].publishes_in, 1);
        assert_eq!(per_shard[gw.shard_of("collector")].publishes_out, 1);
        assert_ne!(gw.shard_of(&pub_id), gw.shard_of("collector"));
        gw.shutdown();
    }

    #[test]
    fn sharded_gateway_same_shard_skips_the_fabric() {
        let gw = ShardedUdpBroker::spawn("127.0.0.1:0", 4, BrokerConfig::default()).unwrap();
        let addr = gw.local_addr();
        let mut sub = UdpClient::connect(addr, ClientConfig::new("localsub"), timeout()).unwrap();
        sub.subscribe("loc/#", QoS::AtLeastOnce, timeout()).unwrap();
        let pub_id = client_on_same_shard("locdev", "localsub", 4);
        let mut publisher = UdpClient::connect(addr, ClientConfig::new(pub_id), timeout()).unwrap();
        let tid = publisher.register("loc/dev", timeout()).unwrap();
        publisher
            .publish(tid, vec![7], QoS::AtLeastOnce, timeout())
            .unwrap();
        let (_, payload) = sub.recv_message(timeout()).unwrap();
        assert_eq!(payload, vec![7]);
        let merged = gw.stats();
        assert_eq!(merged.publishes_in, 1);
        assert_eq!(merged.publishes_out, 1);
        assert_eq!(
            merged.cross_shard_forwards, 0,
            "co-located delivery must never touch the forwarding fabric"
        );
        gw.shutdown();
    }

    #[test]
    fn sharded_gateway_qos2_exactly_once_across_shards() {
        let gw = ShardedUdpBroker::spawn("127.0.0.1:0", 4, BrokerConfig::default()).unwrap();
        let addr = gw.local_addr();
        let mut sub = UdpClient::connect(addr, ClientConfig::new("q2sub"), timeout()).unwrap();
        sub.subscribe("q2/#", QoS::ExactlyOnce, timeout()).unwrap();
        let pub_id = client_on_other_shard("q2dev", "q2sub", 4);
        let mut publisher = UdpClient::connect(addr, ClientConfig::new(pub_id), timeout()).unwrap();
        let tid = publisher.register("q2/dev", timeout()).unwrap();
        for seq in 0..4u8 {
            publisher
                .publish(tid, vec![seq], QoS::ExactlyOnce, timeout())
                .unwrap();
        }
        for seq in 0..4u8 {
            let (_, payload) = sub.recv_message(timeout()).unwrap();
            assert_eq!(payload, vec![seq], "cross-shard QoS 2 must stay in order");
        }
        let merged = gw.stats();
        assert_eq!(merged.publishes_in, 4);
        assert_eq!(merged.publishes_out, 4);
        assert_eq!(merged.cross_shard_forwards, 4);
        assert_eq!(merged.duplicates_suppressed, 0);
        gw.shutdown();
    }

    #[test]
    fn sharded_gateway_restarts_from_one_atomic_snapshot_file() {
        let dir = std::env::temp_dir().join(format!("mqtt-sn-shsnap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gateway.snap");

        let gw = ShardedUdpBroker::spawn("127.0.0.1:0", 4, BrokerConfig::default()).unwrap();
        let addr = gw.local_addr();
        let mut sub = UdpClient::connect(addr, ClientConfig::new("psub"), timeout()).unwrap();
        sub.subscribe("ps/#", QoS::AtLeastOnce, timeout()).unwrap();
        let pub_id = client_on_other_shard("psdev", "psub", 4);
        let mut publisher = UdpClient::connect(addr, ClientConfig::new(pub_id), timeout()).unwrap();
        let tid = publisher.register("ps/dev1", timeout()).unwrap();
        publisher
            .publish(tid, vec![1], QoS::AtLeastOnce, timeout())
            .unwrap();
        sub.recv_message(timeout()).unwrap();

        // Stop all shards, persist one file, restart from it.
        gw.shutdown_to_file(&path).unwrap();
        let gw = ShardedUdpBroker::spawn_from_file(addr, &path).unwrap();
        assert_eq!(gw.shards(), 4, "shard count comes from the file");

        let policy = ReconnectPolicy {
            initial_backoff: Duration::from_millis(50),
            attempt_timeout: Duration::from_secs(1),
            ..ReconnectPolicy::default()
        };
        sub.reconnect(&policy).unwrap();
        publisher.reconnect(&policy).unwrap();
        // Registration, subscription, AND the shared-registry id
        // assignment all survived the file trip: a cross-shard publish
        // still routes.
        let new_tid = publisher
            .topic_id("ps/dev1")
            .expect("registration persisted");
        assert_eq!(
            new_tid, tid,
            "shared registry ids are stable across restart"
        );
        publisher
            .publish(new_tid, vec![2], QoS::AtLeastOnce, timeout())
            .unwrap();
        let (_, payload) = sub.recv_message(timeout()).unwrap();
        assert_eq!(payload, vec![2]);
        // One forward before the restart (persisted with the stats) plus
        // one after: the counter survives the file trip.
        assert_eq!(gw.stats().cross_shard_forwards, 2);
        gw.shutdown();

        // A corrupt file is refused outright — no shard starts.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = ShardedUdpBroker::spawn_from_file("127.0.0.1:0", &path)
            .err()
            .expect("corrupt sharded snapshot must be refused");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // So is a truncated one (a partial per-shard section).
        let good = {
            let mut b = std::fs::read(&path).unwrap();
            let last = b.len() - 1;
            b[last] ^= 0xFF; // undo the corruption
            b
        };
        std::fs::write(&path, &good[..good.len() - 3]).unwrap();
        let err = ShardedUdpBroker::spawn_from_file("127.0.0.1:0", &path)
            .err()
            .expect("truncated sharded snapshot must be refused");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // And a single-broker snapshot is not mistaken for a sharded one.
        let single = UdpBroker::spawn("127.0.0.1:0", BrokerConfig::default()).unwrap();
        single.snapshot_to_file(&path).unwrap();
        single.shutdown();
        let err = ShardedUdpBroker::spawn_from_file("127.0.0.1:0", &path)
            .err()
            .expect("wrong container format must be refused");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_gateway_merges_congestion_as_the_hottest_shard() {
        let gw = ShardedUdpBroker::spawn("127.0.0.1:0", 2, BrokerConfig::default()).unwrap();
        assert_eq!(gw.congestion_level(), 0);
        assert_eq!(gw.backlog(), 0);
        assert_eq!(gw.shard_backlogs(), vec![0, 0]);
        gw.shutdown();
    }
}
