//! Real-socket bindings of the sans-io cores.
//!
//! [`UdpBroker`] runs the [`broker::Broker`](crate::broker::Broker) on a background
//! thread over a `std::net::UdpSocket`; [`UdpClient`] is a blocking client
//! suitable for driving from an application or a transmitter thread. These
//! make the library usable outside the simulator — the integration tests
//! exercise full QoS 2 capture over loopback UDP.

use crate::broker::{Broker, BrokerConfig, BrokerOutputs, BrokerStats};
use crate::client::{Client, ClientConfig, ClientEvent, Nanos, Output};
use crate::packet::{Packet, QoS, TopicRef};
use crate::Error;
use parking_lot::Mutex;
use rand::{rngs::StdRng, SeedableRng};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A broker bound to a UDP socket, served by a background thread.
pub struct UdpBroker {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    broker: Arc<Mutex<Broker<SocketAddr>>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl UdpBroker {
    /// Binds and starts serving. Use `"127.0.0.1:0"` to pick a free port.
    pub fn spawn(bind: impl ToSocketAddrs, config: BrokerConfig) -> io::Result<UdpBroker> {
        Self::spawn_inner(bind, Broker::new(config))
    }

    /// Binds and starts serving from a persisted broker snapshot (see
    /// [`UdpBroker::snapshot`]) — the restart path: durable sessions, topic
    /// registrations, and buffered messages survive the process boundary,
    /// the way RSMB's persistence file keeps gateway state across crashes.
    pub fn spawn_resuming(
        bind: impl ToSocketAddrs,
        mut state: Broker<SocketAddr>,
    ) -> io::Result<UdpBroker> {
        // The serving thread's monotonic clock restarts at zero; rebase the
        // snapshot's timers so retransmissions fire promptly.
        state.reset_clock();
        Self::spawn_inner(bind, state)
    }

    /// Clones the full broker state for later resumption via
    /// [`UdpBroker::spawn_resuming`].
    ///
    /// The serve-loop mutex is held only for a single linear
    /// serialization pass ([`Broker::encode_state`]); the expensive part —
    /// rebuilding the per-session maps and buffers — happens outside the
    /// lock, so in-flight capture traffic is not stalled behind a deep
    /// clone of the whole gateway state.
    pub fn snapshot(&self) -> Broker<SocketAddr> {
        let bytes = self.broker.lock().encode_state();
        Broker::decode_state(&bytes).expect("fresh snapshot bytes decode")
    }

    /// Serializes the current broker state to `path` — checksummed and
    /// written atomically (temp file + rename), so a crash mid-snapshot
    /// leaves the previous file intact. The durable form of
    /// [`UdpBroker::snapshot`]: call it periodically (or before a planned
    /// restart) and resume with [`UdpBroker::spawn_from_file`].
    pub fn snapshot_to_file(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        let bytes = self.broker.lock().encode_state();
        prov_wal::snapshot::write_atomic(path, &bytes)
    }

    /// Binds and starts serving from a snapshot file written by
    /// [`UdpBroker::snapshot_to_file`] — the restart path that survives
    /// gateway *process death*, not just an in-process handover. Corrupt
    /// or truncated snapshot files fail with
    /// [`io::ErrorKind::InvalidData`] rather than silently starting empty.
    pub fn spawn_from_file(
        bind: impl ToSocketAddrs,
        path: impl AsRef<std::path::Path>,
    ) -> io::Result<UdpBroker> {
        let bytes = prov_wal::snapshot::read(path)?;
        let state = Broker::decode_state(&bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Self::spawn_resuming(bind, state)
    }

    fn spawn_inner(bind: impl ToSocketAddrs, state: Broker<SocketAddr>) -> io::Result<UdpBroker> {
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(Duration::from_millis(10)))?;
        let local_addr = socket.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let broker = Arc::new(Mutex::new(state));

        let thread = {
            let shutdown = Arc::clone(&shutdown);
            let broker = Arc::clone(&broker);
            std::thread::spawn(move || serve(&socket, &broker, &shutdown))
        };

        Ok(UdpBroker {
            local_addr,
            shutdown,
            broker,
            thread: Some(thread),
        })
    }

    /// The bound address (to hand to clients).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of routing statistics.
    pub fn stats(&self) -> BrokerStats {
        *self.broker.lock().stats()
    }

    /// Stops the serving thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for UdpBroker {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Datagrams drained per wakeup before the broker lock is taken. Bounds
/// both the receive-buffer footprint and how long outbound traffic waits
/// behind a burst.
const SERVE_BATCH: usize = 32;
/// Receive-slot size: the largest datagram MQTT-SN over UDP can carry.
const SLOT: usize = 64 * 1024;

/// The serve loop: batched datagram I/O around the zero-alloc broker core.
///
/// One blocking `recv_from` (bounded by the 10 ms read timeout, so
/// shutdown and retransmission timers stay responsive) wakes the loop; the
/// socket is then drained non-blocking into per-slot buffers up to
/// [`SERVE_BATCH`]. The whole batch — plus any due timer tick — is
/// processed under a **single** broker lock acquisition through the
/// recycled [`BrokerOutputs`] buffer, and the outbound datagrams are
/// flushed after the lock is released. Steady state performs no per-packet
/// heap allocation and no per-subscriber re-encode.
fn serve(socket: &UdpSocket, broker: &Mutex<Broker<SocketAddr>>, shutdown: &AtomicBool) {
    let start = Instant::now();
    let mut rbuf = vec![0u8; SERVE_BATCH * SLOT];
    // (datagram length, sender) for receive slot `i`.
    let mut frames: Vec<(usize, SocketAddr)> = Vec::with_capacity(SERVE_BATCH);
    let mut out = BrokerOutputs::new();
    let mut pending_io_errors: u64 = 0;
    let mut last_tick = Instant::now();
    // Whether the socket is still in non-blocking mode because a restore
    // after a batch drain failed. Left unrepaired, every "blocking" recv
    // below would return WouldBlock instantly and the loop would spin
    // hot; instead the restore is retried each iteration with a short
    // sleep standing in for the blocking wait until it succeeds.
    let mut nonblocking = false;
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        if nonblocking {
            if socket.set_nonblocking(false).is_ok() {
                nonblocking = false;
            } else {
                pending_io_errors += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        frames.clear();
        match socket.recv_from(&mut rbuf[..SLOT]) {
            Ok((n, from)) => frames.push((n, from)),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => {
                // Transient: on Linux an ICMP port-unreachable from one
                // departed client surfaces here as ECONNREFUSED — exiting
                // would kill the broker for everyone. Back off briefly and
                // keep serving; shutdown still exits via the flag.
                pending_io_errors += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        // A wake usually means a burst: drain whatever else has already
        // queued without blocking, up to the batch bound.
        if !frames.is_empty() && socket.set_nonblocking(true).is_ok() {
            nonblocking = true;
            while frames.len() < SERVE_BATCH {
                let slot = frames.len();
                match socket.recv_from(&mut rbuf[slot * SLOT..(slot + 1) * SLOT]) {
                    Ok((n, from)) => frames.push((n, from)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        pending_io_errors += 1;
                        break;
                    }
                }
            }
            if socket.set_nonblocking(false).is_ok() {
                nonblocking = false;
            }
        }
        let tick_due = last_tick.elapsed() >= Duration::from_millis(100);
        if frames.is_empty() && !tick_due && pending_io_errors == 0 {
            continue;
        }
        let now_ns = start.elapsed().as_nanos() as Nanos;
        {
            // One lock acquisition covers the whole batch plus any due
            // tick; decode errors are counted by the broker, transient
            // socket errors are folded in here.
            let mut b = broker.lock();
            if pending_io_errors > 0 {
                b.note_io_errors(pending_io_errors);
                pending_io_errors = 0;
            }
            b.on_datagram_batch_into(
                now_ns,
                frames
                    .iter()
                    .enumerate()
                    .map(|(slot, &(len, from))| (from, &rbuf[slot * SLOT..slot * SLOT + len])),
                &mut out,
            );
            if tick_due {
                last_tick = Instant::now();
                b.on_tick_into(now_ns, &mut out);
            }
        }
        out.emit(|to, bytes| {
            if socket.send_to(bytes, *to).is_err() {
                pending_io_errors += 1;
            }
        });
        out.clear();
    }
}

/// Errors from the blocking client.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(io::Error),
    /// Protocol-level failure.
    Protocol(Error),
    /// The expected response did not arrive in time.
    Timeout(&'static str),
}

impl NetError {
    /// Whether the failure is plausibly recoverable by retrying — the
    /// signature of a network partition or a broker mid-restart — as
    /// opposed to a fatal condition (protocol violation, permission
    /// error) that no amount of retrying fixes. [`UdpClient::reconnect`]
    /// keeps backing off on transient errors and aborts on fatal ones.
    pub fn is_transient(&self) -> bool {
        match self {
            // The expected response never arrived: partition or slow link.
            NetError::Timeout(_) => true,
            NetError::Io(e) => !matches!(
                e.kind(),
                io::ErrorKind::PermissionDenied
                    | io::ErrorKind::AddrInUse
                    | io::ErrorKind::AddrNotAvailable
                    | io::ErrorKind::InvalidInput
                    | io::ErrorKind::Unsupported
            ),
            // A congested broker asks the client to retry later (spec
            // return code 0x01); every other protocol error is fatal.
            NetError::Protocol(Error::Rejected(crate::packet::ReturnCode::Congestion)) => true,
            NetError::Protocol(_) => false,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}
impl From<Error> for NetError {
    fn from(e: Error) -> Self {
        NetError::Protocol(e)
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Protocol(e) => write!(f, "protocol error: {e}"),
            NetError::Timeout(what) => write!(f, "timed out waiting for {what}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Exponential-backoff schedule for [`UdpClient::reconnect`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReconnectPolicy {
    /// Delay before the second attempt (the first fires immediately).
    pub initial_backoff: Duration,
    /// Ceiling the doubling backoff saturates at.
    pub max_backoff: Duration,
    /// Attempts before giving up with the last transient error.
    pub max_attempts: u32,
    /// Per-attempt budget for the CONNECT handshake + session resumption.
    pub attempt_timeout: Duration,
    /// Jitter fraction in `[0, 1]`: each sleep is drawn uniformly from
    /// `[(1 − jitter)·backoff, (1 + jitter)·backoff]`. A restarted gateway
    /// otherwise sees every disconnected edge device's retry timer fire in
    /// lockstep — the reconnect stampede; jitter spreads the herd.
    pub jitter: f64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            initial_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
            max_attempts: 10,
            attempt_timeout: Duration::from_secs(2),
            jitter: 0.25,
        }
    }
}

impl ReconnectPolicy {
    /// Applies this policy's jitter to a backoff delay.
    pub fn jittered(&self, backoff: Duration, rng: &mut impl rand::Rng) -> Duration {
        jitter_backoff(backoff, self.jitter, rng)
    }
}

/// Spreads `backoff` uniformly over `[(1 − frac)·b, (1 + frac)·b]`.
/// `frac` is clamped to `[0, 1]`; `frac = 0` returns `backoff` unchanged.
pub fn jitter_backoff(backoff: Duration, frac: f64, rng: &mut impl rand::Rng) -> Duration {
    let frac = frac.clamp(0.0, 1.0);
    if frac == 0.0 {
        return backoff;
    }
    let unit: f64 = rng.gen(); // [0, 1)
    let factor = 1.0 - frac + 2.0 * frac * unit;
    Duration::from_nanos((backoff.as_nanos() as f64 * factor) as u64)
}

/// A cheap per-call entropy seed for backoff jitter: wall clock nanos mixed
/// with a process-wide counter, so simultaneous callers (the stampede case)
/// still draw distinct jitter streams. Not cryptographic.
pub fn entropy_seed() -> u64 {
    use std::sync::atomic::AtomicU64;
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    // splitmix-style avalanche so close timestamps diverge.
    let mut z = nanos ^ COUNTER.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A blocking MQTT-SN client over UDP.
pub struct UdpClient {
    socket: UdpSocket,
    broker: SocketAddr,
    client: Client,
    start: Instant,
    events: VecDeque<ClientEvent>,
    /// Reused for every outbound packet so the publish path does not
    /// allocate a fresh wire buffer per datagram.
    write_buf: Vec<u8>,
}

impl UdpClient {
    /// Connects to a broker, completing the CONNECT handshake.
    pub fn connect(
        broker: SocketAddr,
        config: ClientConfig,
        timeout: Duration,
    ) -> Result<UdpClient, NetError> {
        let socket = UdpSocket::bind("0.0.0.0:0")?;
        socket.connect(broker)?;
        socket.set_read_timeout(Some(Duration::from_millis(10)))?;
        let mut c = UdpClient {
            socket,
            broker,
            client: Client::new(config),
            start: Instant::now(),
            events: VecDeque::new(),
            write_buf: Vec::new(),
        };
        let outputs = c.client.connect(c.now());
        c.dispatch(outputs)?;
        c.wait_for(timeout, "CONNACK", |e| {
            matches!(e, ClientEvent::Connected | ClientEvent::ConnectFailed(_))
        })
        .and_then(|e| match e {
            ClientEvent::Connected => Ok(()),
            ClientEvent::ConnectFailed(code) => Err(NetError::Protocol(Error::Rejected(code))),
            _ => unreachable!(),
        })?;
        Ok(c)
    }

    fn now(&self) -> Nanos {
        self.start.elapsed().as_nanos() as Nanos
    }

    fn dispatch(&mut self, outputs: Vec<Output>) -> Result<(), NetError> {
        for o in outputs {
            match o {
                Output::Send(p) => {
                    self.write_buf.clear();
                    p.encode_into(&mut self.write_buf);
                    self.socket.send(&self.write_buf)?;
                    // The packet's payload buffer is done (the state machine
                    // keeps its own copy for QoS 1/2 retransmission) — feed
                    // it back to the pool so QoS 0 publishes recycle too.
                    if let Packet::Publish { payload, .. } = p {
                        self.client.reclaim_payload(payload);
                    }
                }
                Output::Event(e) => self.events.push_back(e),
            }
        }
        Ok(())
    }

    /// Pumps the socket once (bounded by the socket read timeout) and runs
    /// timers. Surfaced events accumulate in the internal queue.
    pub fn pump(&mut self) -> Result<(), NetError> {
        let mut buf = [0u8; 64 * 1024];
        match self.socket.recv(&mut buf) {
            Ok(n) => {
                let now = self.now();
                // Borrowed decode: inbound PUBLISH payloads are copied
                // once into a pooled buffer, not a fresh Vec (malformed
                // datagrams are dropped, as before).
                if let Ok(outputs) = self.client.on_datagram(&buf[..n], now) {
                    self.dispatch(outputs)?;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(NetError::Io(e)),
        }
        let now = self.now();
        let outputs = self.client.on_tick(now);
        self.dispatch(outputs)?;
        Ok(())
    }

    /// Pops a queued event, pumping once if none is queued.
    pub fn poll_event(&mut self) -> Result<Option<ClientEvent>, NetError> {
        if let Some(e) = self.events.pop_front() {
            return Ok(Some(e));
        }
        self.pump()?;
        Ok(self.events.pop_front())
    }

    /// Pops a queued event without touching the socket (never blocks).
    pub fn pop_event(&mut self) -> Option<ClientEvent> {
        self.events.pop_front()
    }

    fn wait_for<F>(
        &mut self,
        timeout: Duration,
        what: &'static str,
        predicate: F,
    ) -> Result<ClientEvent, NetError>
    where
        F: Fn(&ClientEvent) -> bool,
    {
        let deadline = Instant::now() + timeout;
        let mut stash = VecDeque::new();
        loop {
            while let Some(e) = self.events.pop_front() {
                if predicate(&e) {
                    // Preserve unrelated events for later polls.
                    while let Some(s) = stash.pop_front() {
                        self.events.push_back(s);
                    }
                    return Ok(e);
                }
                stash.push_back(e);
            }
            if Instant::now() >= deadline {
                while let Some(s) = stash.pop_front() {
                    self.events.push_back(s);
                }
                return Err(NetError::Timeout(what));
            }
            self.pump()?;
        }
    }

    /// Registers a topic name, returning its broker-assigned id.
    pub fn register(&mut self, topic: &str, timeout: Duration) -> Result<u16, NetError> {
        let now = self.now();
        let (_, outputs) = self.client.register(topic, now)?;
        self.dispatch(outputs)?;
        let topic_owned = topic.to_owned();
        let e = self.wait_for(timeout, "REGACK", |e| {
            matches!(e, ClientEvent::Registered { topic_name, .. } if *topic_name == topic_owned)
        })?;
        match e {
            ClientEvent::Registered { topic_id, .. } => Ok(topic_id),
            _ => unreachable!(),
        }
    }

    /// Subscribes to a filter; returns the assigned topic id (0 for
    /// wildcard filters).
    pub fn subscribe(
        &mut self,
        filter: &str,
        qos: QoS,
        timeout: Duration,
    ) -> Result<u16, NetError> {
        let now = self.now();
        let (msg_id, outputs) = self.client.subscribe(filter, qos, now)?;
        self.dispatch(outputs)?;
        let e = self.wait_for(
            timeout,
            "SUBACK",
            |e| matches!(e, ClientEvent::Subscribed { msg_id: m, .. } if *m == msg_id),
        )?;
        match e {
            ClientEvent::Subscribed { topic_id, .. } => Ok(topic_id),
            _ => unreachable!(),
        }
    }

    /// Publishes without waiting for QoS completion. Returns the message id
    /// (0 for QoS 0); completion surfaces later as
    /// [`ClientEvent::PublishDone`].
    pub fn publish_nowait(
        &mut self,
        topic_id: u16,
        payload: Vec<u8>,
        qos: QoS,
    ) -> Result<u16, NetError> {
        let now = self.now();
        let (msg_id, outputs) = self
            .client
            .publish(TopicRef::Id(topic_id), payload, qos, now)?;
        self.dispatch(outputs)?;
        Ok(msg_id)
    }

    /// Publishes without waiting, reporting transport trouble without
    /// losing the record: the returned flag is `false` when the initial
    /// transmission failed at the socket level — for QoS 1/2 the message
    /// is then still in-flight inside the state machine and retransmits
    /// once the link recovers. Only protocol-level refusal (bad state,
    /// full in-flight window) is an `Err`.
    pub fn publish_resilient(
        &mut self,
        topic_id: u16,
        payload: Vec<u8>,
        qos: QoS,
    ) -> Result<(u16, bool), Error> {
        let now = self.now();
        let (msg_id, outputs) = self
            .client
            .publish(TopicRef::Id(topic_id), payload, qos, now)?;
        let sent = self.dispatch(outputs).is_ok();
        Ok((msg_id, sent))
    }

    /// Publishes and, for QoS 1/2, blocks until the handshake completes.
    pub fn publish(
        &mut self,
        topic_id: u16,
        payload: Vec<u8>,
        qos: QoS,
        timeout: Duration,
    ) -> Result<(), NetError> {
        let msg_id = self.publish_nowait(topic_id, payload, qos)?;
        if qos == QoS::AtMostOnce {
            return Ok(());
        }
        self.wait_for(timeout, "publish completion", |e| {
            matches!(
                e,
                ClientEvent::PublishDone { msg_id: m }
                | ClientEvent::PublishFailed { msg_id: m }
                | ClientEvent::PublishRejected { msg_id: m, .. } if *m == msg_id
            )
        })
        .and_then(|e| match e {
            ClientEvent::PublishDone { .. } => Ok(()),
            ClientEvent::PublishRejected { code, .. } => {
                Err(NetError::Protocol(Error::Rejected(code)))
            }
            _ => Err(NetError::Timeout("publish acknowledged")),
        })
    }

    /// Waits for the next inbound application message.
    pub fn recv_message(&mut self, timeout: Duration) -> Result<(TopicRef, Vec<u8>), NetError> {
        let e = self.wait_for(timeout, "message", |e| {
            matches!(e, ClientEvent::Message { .. })
        })?;
        match e {
            ClientEvent::Message { topic, payload } => Ok((topic, payload)),
            _ => unreachable!(),
        }
    }

    /// Number of QoS 1/2 publishes still in flight.
    pub fn inflight_len(&self) -> usize {
        self.client.inflight_len()
    }

    /// Whether another QoS 1/2 publish fits the in-flight window.
    pub fn can_publish(&self) -> bool {
        self.client.can_publish()
    }

    /// Takes a reclaimed payload buffer from a completed publish (see
    /// [`Client::take_spare_payload`]).
    pub fn take_spare_payload(&mut self) -> Option<Vec<u8>> {
        self.client.take_spare_payload()
    }

    /// Returns an unused payload buffer to the reuse pool (see
    /// [`Client::reclaim_payload`]).
    pub fn reclaim_payload(&mut self, payload: Vec<u8>) {
        self.client.reclaim_payload(payload);
    }

    /// Graceful disconnect (best effort).
    pub fn disconnect(&mut self) -> Result<(), NetError> {
        let now = self.now();
        let outputs = self.client.disconnect(now);
        self.dispatch(outputs)?;
        Ok(())
    }

    /// Current connection state of the underlying state machine.
    pub fn state(&self) -> crate::ClientState {
        self.client.state()
    }

    /// Broker-assigned id of a topic registered in this (or a resumed)
    /// session. After a reconnect across a broker restart the id may
    /// differ from the one the original [`UdpClient::register`] returned.
    pub fn topic_id(&self, topic_name: &str) -> Option<u16> {
        self.client.topic_id(topic_name)
    }

    /// Drains payloads of publishes that exhausted retries or were
    /// rejected by the broker (see [`Client::take_dead_letters`]).
    pub fn take_dead_letters(&mut self) -> Vec<(u16, Vec<u8>)> {
        self.client.take_dead_letters()
    }

    /// One reconnection attempt: rebinds a fresh socket to the original
    /// broker address and runs the CONNECT handshake with
    /// `clean_session = false`, waiting until session resumption (topic
    /// re-registration, in-flight retransmission) completes. Queued
    /// application events are preserved across the attempt.
    pub fn try_reconnect(&mut self, timeout: Duration) -> Result<(), NetError> {
        let socket = UdpSocket::bind("0.0.0.0:0")?;
        socket.connect(self.broker)?;
        socket.set_read_timeout(Some(Duration::from_millis(10)))?;
        self.socket = socket;
        let now = self.now();
        let outputs = self.client.reconnect(now);
        self.dispatch(outputs)?;
        let deadline = Instant::now() + timeout;
        self.wait_for(timeout, "reconnect CONNACK", |e| {
            matches!(e, ClientEvent::Connected | ClientEvent::ConnectFailed(_))
        })
        .and_then(|e| match e {
            ClientEvent::Connected => Ok(()),
            ClientEvent::ConnectFailed(code) => Err(NetError::Protocol(Error::Rejected(code))),
            _ => unreachable!(),
        })?;
        while !self.client.resume_complete() {
            if Instant::now() >= deadline {
                return Err(NetError::Timeout("session resumption"));
            }
            self.pump()?;
        }
        Ok(())
    }

    /// Reconnects with exponential backoff, distinguishing transient
    /// failures (partition, broker mid-restart — retried with a doubling
    /// delay) from fatal ones (protocol rejection, local configuration —
    /// surfaced immediately). Returns the number of attempts on success.
    pub fn reconnect(&mut self, policy: &ReconnectPolicy) -> Result<u32, NetError> {
        let mut backoff = policy.initial_backoff;
        let mut rng = StdRng::seed_from_u64(entropy_seed());
        let mut last: Option<NetError> = None;
        for attempt in 1..=policy.max_attempts.max(1) {
            match self.try_reconnect(policy.attempt_timeout) {
                Ok(()) => return Ok(attempt),
                Err(e) if !e.is_transient() => return Err(e),
                Err(e) => last = Some(e),
            }
            if attempt < policy.max_attempts.max(1) {
                std::thread::sleep(policy.jittered(backoff, &mut rng));
                backoff = (backoff * 2).min(policy.max_backoff);
            }
        }
        Err(last.unwrap_or(NetError::Timeout("reconnect")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeout() -> Duration {
        Duration::from_secs(5)
    }

    #[test]
    fn end_to_end_qos2_over_loopback() {
        let broker = UdpBroker::spawn("127.0.0.1:0", BrokerConfig::default()).unwrap();
        let addr = broker.local_addr();

        let mut sub = UdpClient::connect(addr, ClientConfig::new("subscriber"), timeout()).unwrap();
        sub.subscribe("prov/#", QoS::ExactlyOnce, timeout())
            .unwrap();

        let mut publisher =
            UdpClient::connect(addr, ClientConfig::new("publisher"), timeout()).unwrap();
        let tid = publisher.register("prov/dev1", timeout()).unwrap();
        publisher
            .publish(
                tid,
                b"hello provenance".to_vec(),
                QoS::ExactlyOnce,
                timeout(),
            )
            .unwrap();

        let (topic, payload) = sub.recv_message(timeout()).unwrap();
        assert_eq!(payload, b"hello provenance");
        assert!(matches!(topic, TopicRef::Id(_)));
        assert_eq!(publisher.inflight_len(), 0);

        let stats = broker.stats();
        assert_eq!(stats.publishes_in, 1);
        assert_eq!(stats.publishes_out, 1);
        broker.shutdown();
    }

    #[test]
    fn multiple_publishers_fan_into_one_subscriber() {
        let broker = UdpBroker::spawn("127.0.0.1:0", BrokerConfig::default()).unwrap();
        let addr = broker.local_addr();
        let mut sub = UdpClient::connect(addr, ClientConfig::new("sub"), timeout()).unwrap();
        sub.subscribe("wf/+", QoS::AtLeastOnce, timeout()).unwrap();

        for i in 0..3 {
            let mut p =
                UdpClient::connect(addr, ClientConfig::new(format!("pub{i}")), timeout()).unwrap();
            let tid = p.register(&format!("wf/dev{i}"), timeout()).unwrap();
            p.publish(tid, vec![i as u8], QoS::AtLeastOnce, timeout())
                .unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..3 {
            let (_, payload) = sub.recv_message(timeout()).unwrap();
            got.push(payload[0]);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn qos0_publish_recycles_payload_buffer() {
        let broker = UdpBroker::spawn("127.0.0.1:0", BrokerConfig::default()).unwrap();
        let mut c =
            UdpClient::connect(broker.local_addr(), ClientConfig::new("q0"), timeout()).unwrap();
        let tid = c.register("t/q0", timeout()).unwrap();
        assert!(c.take_spare_payload().is_none());
        c.publish(tid, vec![1, 2, 3], QoS::AtMostOnce, timeout())
            .unwrap();
        let spare = c
            .take_spare_payload()
            .expect("QoS 0 payload buffer returns to the pool");
        assert!(spare.is_empty() && spare.capacity() >= 3);
        broker.shutdown();
    }

    #[test]
    fn neterror_transient_classification() {
        assert!(NetError::Timeout("x").is_transient());
        assert!(NetError::Io(io::Error::from(io::ErrorKind::ConnectionRefused)).is_transient());
        assert!(NetError::Io(io::Error::from(io::ErrorKind::ConnectionReset)).is_transient());
        assert!(!NetError::Io(io::Error::from(io::ErrorKind::PermissionDenied)).is_transient());
        assert!(
            NetError::Protocol(Error::Rejected(crate::packet::ReturnCode::Congestion))
                .is_transient()
        );
        assert!(
            !NetError::Protocol(Error::Rejected(crate::packet::ReturnCode::NotSupported))
                .is_transient()
        );
        assert!(!NetError::Protocol(Error::BadState("x")).is_transient());
    }

    #[test]
    fn reconnect_resumes_session_across_broker_restart() {
        let broker = UdpBroker::spawn("127.0.0.1:0", BrokerConfig::default()).unwrap();
        let addr = broker.local_addr();

        let mut sub = UdpClient::connect(addr, ClientConfig::new("rsub"), timeout()).unwrap();
        sub.subscribe("re/#", QoS::AtLeastOnce, timeout()).unwrap();
        let mut publisher = UdpClient::connect(addr, ClientConfig::new("rpub"), timeout()).unwrap();
        let tid = publisher.register("re/dev1", timeout()).unwrap();
        publisher
            .publish(tid, vec![1], QoS::AtLeastOnce, timeout())
            .unwrap();
        sub.recv_message(timeout()).unwrap();

        // Kill the broker, preserving its state; rebind the same port.
        let snapshot = broker.snapshot();
        broker.shutdown();
        let broker = UdpBroker::spawn_resuming(addr, snapshot).unwrap();

        // Both sides reconnect with backoff; sessions resume (the
        // subscriber's subscription and the publisher's registration both
        // survive without re-issuing them).
        let policy = ReconnectPolicy {
            initial_backoff: Duration::from_millis(50),
            attempt_timeout: Duration::from_secs(1),
            ..ReconnectPolicy::default()
        };
        sub.reconnect(&policy).unwrap();
        let attempts = publisher.reconnect(&policy).unwrap();
        assert!(attempts >= 1);
        let new_tid = publisher.topic_id("re/dev1").expect("registration resumed");

        publisher
            .publish(new_tid, vec![2], QoS::AtLeastOnce, timeout())
            .unwrap();
        let (_, payload) = sub.recv_message(timeout()).unwrap();
        assert_eq!(payload, vec![2]);
        broker.shutdown();
    }

    #[test]
    fn reconnect_backs_off_until_broker_returns() {
        let broker = UdpBroker::spawn("127.0.0.1:0", BrokerConfig::default()).unwrap();
        let addr = broker.local_addr();
        let mut client = UdpClient::connect(addr, ClientConfig::new("bk"), timeout()).unwrap();
        client.register("bk/t", timeout()).unwrap();
        let snapshot = broker.snapshot();
        broker.shutdown();

        // Bring the broker back only after a delay: early attempts must
        // fail transiently and the backoff loop must ride them out.
        let restarter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            UdpBroker::spawn_resuming(addr, snapshot).unwrap()
        });
        let attempts = client
            .reconnect(&ReconnectPolicy {
                initial_backoff: Duration::from_millis(100),
                max_backoff: Duration::from_millis(400),
                max_attempts: 20,
                attempt_timeout: Duration::from_millis(500),
                ..ReconnectPolicy::default()
            })
            .unwrap();
        assert!(
            attempts >= 2,
            "expected early attempts to fail, got {attempts}"
        );
        let broker = restarter.join().unwrap();
        assert_eq!(client.state(), crate::ClientState::Connected);
        broker.shutdown();
    }

    #[test]
    fn jittered_backoff_stays_within_the_window() {
        let mut rng = StdRng::seed_from_u64(7);
        let policy = ReconnectPolicy {
            jitter: 0.25,
            ..ReconnectPolicy::default()
        };
        let base = Duration::from_millis(1000);
        let (lo, hi) = (Duration::from_millis(750), Duration::from_millis(1250));
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..1000 {
            let d = policy.jittered(base, &mut rng);
            assert!(d >= lo && d <= hi, "jitter out of window: {d:?}");
            distinct.insert(d);
        }
        assert!(
            distinct.len() > 100,
            "jitter not spreading: {}",
            distinct.len()
        );
        // frac = 0 disables jitter; out-of-range fractions are clamped.
        assert_eq!(jitter_backoff(base, 0.0, &mut rng), base);
        for _ in 0..100 {
            let d = jitter_backoff(base, 7.5, &mut rng);
            assert!(d <= Duration::from_millis(2000), "clamp failed: {d:?}");
        }
        // Two devices that disconnect at the same instant draw different
        // jitter streams (the stampede case entropy_seed exists for).
        assert_ne!(entropy_seed(), entropy_seed());
    }

    #[test]
    fn broker_restarts_from_snapshot_file() {
        let dir = std::env::temp_dir().join(format!("mqtt-sn-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broker.snap");

        let broker = UdpBroker::spawn("127.0.0.1:0", BrokerConfig::default()).unwrap();
        let addr = broker.local_addr();
        let mut sub = UdpClient::connect(addr, ClientConfig::new("fsub"), timeout()).unwrap();
        sub.subscribe("fs/#", QoS::AtLeastOnce, timeout()).unwrap();
        let mut publisher = UdpClient::connect(addr, ClientConfig::new("fpub"), timeout()).unwrap();
        let tid = publisher.register("fs/dev1", timeout()).unwrap();
        publisher
            .publish(tid, vec![1], QoS::AtLeastOnce, timeout())
            .unwrap();
        sub.recv_message(timeout()).unwrap();

        // Persist to disk, kill the process's broker, restart FROM THE FILE.
        broker.snapshot_to_file(&path).unwrap();
        broker.shutdown();
        let broker = UdpBroker::spawn_from_file(addr, &path).unwrap();

        let policy = ReconnectPolicy {
            initial_backoff: Duration::from_millis(50),
            attempt_timeout: Duration::from_secs(1),
            ..ReconnectPolicy::default()
        };
        sub.reconnect(&policy).unwrap();
        publisher.reconnect(&policy).unwrap();
        // Both the registration and the subscription survived the file trip.
        let new_tid = publisher
            .topic_id("fs/dev1")
            .expect("registration persisted");
        publisher
            .publish(new_tid, vec![2], QoS::AtLeastOnce, timeout())
            .unwrap();
        let (_, payload) = sub.recv_message(timeout()).unwrap();
        assert_eq!(payload, vec![2]);
        broker.shutdown();

        // A corrupt snapshot is refused, not silently started empty.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = UdpBroker::spawn_from_file("127.0.0.1:0", &path)
            .err()
            .expect("corrupt snapshot must be refused");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn broker_survives_icmp_unreachable_from_departed_client() {
        let broker = UdpBroker::spawn(
            "127.0.0.1:0",
            BrokerConfig {
                retry_timeout: Duration::from_millis(100),
                ..BrokerConfig::default()
            },
        )
        .unwrap();
        let addr = broker.local_addr();
        // A QoS 1 subscriber that vanishes without disconnecting: broker
        // retransmissions to its dead port can bounce back as ICMP
        // port-unreachable (ECONNREFUSED on Linux).
        {
            let mut sub = UdpClient::connect(addr, ClientConfig::new("ghost"), timeout()).unwrap();
            sub.subscribe("g/#", QoS::AtLeastOnce, timeout()).unwrap();
        } // socket dropped here, no DISCONNECT sent
        let mut publisher =
            UdpClient::connect(addr, ClientConfig::new("alive"), timeout()).unwrap();
        let tid = publisher.register("g/t", timeout()).unwrap();
        publisher
            .publish(tid, vec![1], QoS::AtLeastOnce, timeout())
            .unwrap();
        // Let several retransmissions to the dead port happen.
        std::thread::sleep(Duration::from_millis(400));
        // The broker must still serve new clients.
        let mut check = UdpClient::connect(addr, ClientConfig::new("check"), timeout()).unwrap();
        assert!(check.register("g/ok", timeout()).is_ok());
        broker.shutdown();
    }

    #[test]
    fn garbage_datagrams_are_counted_not_swallowed() {
        let broker = UdpBroker::spawn("127.0.0.1:0", BrokerConfig::default()).unwrap();
        let addr = broker.local_addr();
        let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
        raw.send_to(b"\xde\xad\xbe\xef not mqtt-sn", addr).unwrap();
        raw.send_to(&[0x05, 0x0c, 0x00], addr).unwrap(); // length mismatch

        let deadline = Instant::now() + timeout();
        while broker.stats().decode_errors < 2 {
            assert!(
                Instant::now() < deadline,
                "decode errors never surfaced: {:?}",
                broker.stats()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(broker.stats().decode_errors, 2);
        // The broker still serves well-formed traffic afterwards.
        let mut c = UdpClient::connect(addr, ClientConfig::new("ok"), timeout()).unwrap();
        assert!(c.register("g/after", timeout()).is_ok());
        broker.shutdown();
    }

    #[test]
    fn snapshot_does_not_stall_capture_traffic() {
        let broker = UdpBroker::spawn(
            "127.0.0.1:0",
            BrokerConfig {
                max_buffered: 1 << 14,
                ..BrokerConfig::default()
            },
        )
        .unwrap();
        let addr = broker.local_addr();

        // Inflate the broker state: a durable subscriber goes away and
        // accumulates a deep buffered backlog, the expensive thing a
        // snapshot has to serialize.
        {
            let mut away = UdpClient::connect(
                addr,
                ClientConfig {
                    clean_session: false,
                    ..ClientConfig::new("away")
                },
                timeout(),
            )
            .unwrap();
            away.subscribe("snap/bulk", QoS::AtLeastOnce, timeout())
                .unwrap();
            away.disconnect().unwrap();
        }
        let mut feeder = UdpClient::connect(addr, ClientConfig::new("feeder"), timeout()).unwrap();
        let bulk_tid = feeder.register("snap/bulk", timeout()).unwrap();
        for _ in 0..512 {
            feeder
                .publish(bulk_tid, vec![0x77; 4096], QoS::AtLeastOnce, timeout())
                .unwrap();
        }

        // Hammer snapshots from another thread while measuring publish
        // round-trip latency.
        let stop = Arc::new(AtomicBool::new(false));
        let broker = Arc::new(broker);
        let snapper = {
            let stop = Arc::clone(&stop);
            let broker = Arc::clone(&broker);
            std::thread::spawn(move || {
                let mut snapshots = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let snap = broker.snapshot();
                    assert!(snap.session_count() >= 1);
                    snapshots += 1;
                }
                snapshots
            })
        };

        let mut worst = Duration::ZERO;
        let tid = feeder.register("snap/live", timeout()).unwrap();
        for _ in 0..50 {
            let t = Instant::now();
            feeder
                .publish(tid, vec![1; 32], QoS::AtLeastOnce, timeout())
                .unwrap();
            worst = worst.max(t.elapsed());
        }
        stop.store(true, Ordering::Relaxed);
        let snapshots = snapper.join().unwrap();
        assert!(snapshots > 0, "snapshot thread never ran");
        // Generous CI bound: the serve loop must never sit behind a deep
        // state clone. (The pre-fix deep-clone-under-lock implementation
        // is what this guards against regressing to.)
        assert!(
            worst < Duration::from_secs(1),
            "publish latency spiked to {worst:?} across concurrent snapshots"
        );
    }

    #[test]
    fn connect_to_dead_broker_times_out() {
        // Bind a socket and drop it so nothing answers.
        let dead = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = dead.local_addr().unwrap();
        drop(dead);
        let err = UdpClient::connect(
            addr,
            ClientConfig::new("nobody"),
            Duration::from_millis(200),
        )
        .err()
        .expect("must fail");
        assert!(matches!(err, NetError::Timeout(_) | NetError::Io(_)));
    }
}
