//! Sans-io MQTT-SN client state machine.
//!
//! The client never touches a socket or a clock: callers feed it inbound
//! packets ([`Client::on_packet`]) and time ([`Client::on_tick`]), and it
//! returns packets to send plus events to surface. The same machine backs
//! the real-UDP binding in [`crate::net`] and the discrete-event simulator
//! used for the paper's experiments.
//!
//! Retransmission follows the spec's `Tretry`/`Nretry` scheme: QoS 1/2
//! messages are re-sent with the DUP flag until acknowledged or the retry
//! budget is exhausted.

use crate::packet::{Packet, PacketRef, QoS, ReturnCode, TopicRef};
use crate::Error;
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

/// Monotonic virtual or real time in nanoseconds.
pub type Nanos = u64;

/// Client configuration.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Client identifier (1..=23 bytes per spec).
    pub client_id: String,
    /// Keep-alive period; a PINGREQ is sent after this much idle time.
    pub keep_alive: Duration,
    /// Request a clean session on connect.
    pub clean_session: bool,
    /// Retransmission timeout (spec `Tretry`, typically 10–15 s; shorter
    /// in tests).
    pub retry_timeout: Duration,
    /// Maximum retransmissions (spec `Nretry`).
    pub max_retries: u32,
    /// Maximum unacknowledged QoS 1/2 publishes in flight.
    pub max_inflight: usize,
}

impl ClientConfig {
    /// Reasonable defaults for an edge device.
    pub fn new(client_id: impl Into<String>) -> Self {
        ClientConfig {
            client_id: client_id.into(),
            keep_alive: Duration::from_secs(60),
            clean_session: true,
            retry_timeout: Duration::from_secs(10),
            max_retries: 5,
            max_inflight: 64,
        }
    }
}

/// Connection state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientState {
    /// Not connected.
    Disconnected,
    /// CONNECT sent, awaiting CONNACK.
    Connecting,
    /// Session established.
    Connected,
}

/// Events surfaced to the application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientEvent {
    /// CONNACK accepted.
    Connected,
    /// CONNACK rejected.
    ConnectFailed(ReturnCode),
    /// REGACK received for a topic registration.
    Registered {
        /// The registered topic name.
        topic_name: String,
        /// The broker-assigned id.
        topic_id: u16,
    },
    /// SUBACK received.
    Subscribed {
        /// Transaction id of the SUBSCRIBE.
        msg_id: u16,
        /// Assigned topic id (0 for wildcard filters).
        topic_id: u16,
        /// Granted QoS.
        qos: QoS,
    },
    /// UNSUBACK received.
    Unsubscribed {
        /// Transaction id.
        msg_id: u16,
    },
    /// A QoS 1 publish was acknowledged or a QoS 2 publish completed its
    /// 4-way handshake.
    PublishDone {
        /// The publish's message id.
        msg_id: u16,
    },
    /// Retries exhausted for an in-flight message. The payload is parked in
    /// the dead-letter queue ([`Client::take_dead_letters`]) for replay.
    PublishFailed {
        /// The publish's message id.
        msg_id: u16,
    },
    /// The broker rejected a publish (e.g. `InvalidTopicId` after losing
    /// the registration across a restart). The payload is parked in the
    /// dead-letter queue so the caller can re-register and retry.
    PublishRejected {
        /// The publish's message id.
        msg_id: u16,
        /// The broker's rejection code.
        code: ReturnCode,
    },
    /// An application message arrived (QoS 2 duplicates already filtered).
    Message {
        /// Topic reference it was published to.
        topic: TopicRef,
        /// Payload bytes.
        payload: Vec<u8>,
    },
    /// The broker stopped answering keep-alive pings.
    PingTimeout,
    /// Broker confirmed disconnect.
    Disconnected,
    /// The broker advertised its congestion level (vendor
    /// [`Packet::CongestionAdvisory`]): 0 = clear, 1 = soft (pace and
    /// coalesce), 2 = hard (QoS ≥ 1 publishes are being rejected).
    Congestion {
        /// Advertised level.
        level: u8,
    },
}

/// What the state machine wants the caller to do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Output {
    /// Transmit this packet to the broker.
    Send(Packet),
    /// Surface this event to the application.
    Event(ClientEvent),
}

/// Which acknowledgement an in-flight outbound message is waiting for.
#[derive(Clone, Debug)]
enum OutPhase {
    Puback,
    Pubrec,
    Pubcomp,
}

#[derive(Clone, Debug)]
struct PendingControl {
    packet: Packet,
    last_sent: Nanos,
    retries: u32,
}

#[derive(Clone, Debug)]
struct InFlight {
    topic: TopicRef,
    payload: Vec<u8>,
    qos: QoS,
    retain: bool,
    phase: OutPhase,
    last_sent: Nanos,
    retries: u32,
    /// Monotonic publish-order stamp. Retransmission and dead-lettering
    /// iterate in this order, not msg-id order — msg ids wrap at u16 and
    /// would scramble replay order on long-running sessions.
    seq: u64,
}

/// The client state machine.
#[derive(Debug)]
pub struct Client {
    config: ClientConfig,
    state: ClientState,
    next_msg_id: u16,
    /// Publish-order counter backing [`InFlight::seq`].
    next_seq: u64,
    connect_sent_at: Option<Nanos>,
    pending_register: HashMap<u16, String>,
    /// Control packets awaiting replies (CONNECT / REGISTER / SUBSCRIBE /
    /// UNSUBSCRIBE), retransmitted on `Tretry` per spec §6.13.
    pending_control: HashMap<u16, PendingControl>,
    inflight: HashMap<u16, InFlight>,
    /// Inbound QoS 2 message ids between PUBLISH and PUBREL (dedup set).
    inbound_qos2: HashMap<u16, ()>,
    /// Recently completed inbound QoS 2 ids (bounded FIFO, newest last): a
    /// delayed duplicate PUBLISH arriving *after* its PUBREL cleared the
    /// pending entry must still be suppressed, or a reordering link breaks
    /// exactly-once delivery. Brokers allocate ids sequentially, so a
    /// legitimate id reuse is ~65k handshakes away — far beyond this
    /// window.
    completed_qos2: VecDeque<u16>,
    /// Cleared payload buffers reclaimed from completed publishes, handed
    /// back to callers via [`Client::take_spare_payload`] so the publish
    /// path can run without per-message allocation.
    spare_payloads: Vec<Vec<u8>>,
    /// Topic name → broker-assigned id learned from REGACKs; re-registered
    /// on session resumption.
    registered_topics: HashMap<String, u16>,
    /// SUBSCRIBE transactions awaiting a SUBACK: msg id → (filter, qos).
    pending_subscribe: HashMap<u16, (String, QoS)>,
    /// Acknowledged subscriptions, re-subscribed on session resumption.
    subscribed_filters: Vec<(String, QoS)>,
    /// True between [`Client::reconnect`] and the accepted CONNACK.
    resuming: bool,
    /// During resumption: topic names awaiting a fresh REGACK → the id they
    /// had in the previous session, so in-flight publishes can be remapped
    /// if the broker (e.g. after a restart) assigns a different id.
    resume_pending: HashMap<String, u16>,
    /// Payloads of publishes that exhausted retries or were rejected by the
    /// broker, recoverable via [`Client::take_dead_letters`] for replay.
    dead_letters: Vec<(u16, Vec<u8>)>,
    last_tx: Nanos,
    ping_outstanding_since: Option<Nanos>,
}

/// Upper bound on buffers retained for reuse.
const MAX_SPARE_PAYLOADS: usize = 16;

/// How many completed inbound QoS 2 ids are remembered to suppress late
/// duplicate PUBLISHes (see [`Client::completed_qos2`]).
const COMPLETED_QOS2_WINDOW: usize = 64;

impl Client {
    /// Creates a disconnected client.
    pub fn new(config: ClientConfig) -> Self {
        Client {
            config,
            state: ClientState::Disconnected,
            next_msg_id: 1,
            next_seq: 0,
            connect_sent_at: None,
            pending_register: HashMap::new(),
            pending_control: HashMap::new(),
            inflight: HashMap::new(),
            inbound_qos2: HashMap::new(),
            completed_qos2: VecDeque::new(),
            spare_payloads: Vec::new(),
            registered_topics: HashMap::new(),
            pending_subscribe: HashMap::new(),
            subscribed_filters: Vec::new(),
            resuming: false,
            resume_pending: HashMap::new(),
            dead_letters: Vec::new(),
            last_tx: 0,
            ping_outstanding_since: None,
        }
    }

    /// Takes a reclaimed payload buffer (cleared, capacity retained) from a
    /// completed publish, if one is available. Encoding the next message
    /// into such a buffer makes the steady-state publish path allocation-free.
    pub fn take_spare_payload(&mut self) -> Option<Vec<u8>> {
        self.spare_payloads.pop()
    }

    /// Hands a no-longer-needed payload buffer back for reuse. Transports
    /// call this with the buffer out of an encoded `Publish` packet (QoS 0
    /// publishes never reach the completion path, so this is their only way
    /// back into the pool).
    pub fn reclaim_payload(&mut self, mut payload: Vec<u8>) {
        if self.spare_payloads.len() < MAX_SPARE_PAYLOADS {
            payload.clear();
            self.spare_payloads.push(payload);
        }
    }

    /// Current connection state.
    pub fn state(&self) -> ClientState {
        self.state
    }

    /// Number of unacknowledged QoS 1/2 publishes.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Whether another QoS 1/2 publish can be started.
    pub fn can_publish(&self) -> bool {
        self.inflight.len() < self.config.max_inflight
    }

    /// Broker-assigned id of a topic registered in this (or, after
    /// resumption, the previous) session.
    pub fn topic_id(&self, topic_name: &str) -> Option<u16> {
        self.registered_topics.get(topic_name).copied()
    }

    /// False while session resumption is still in progress: the CONNACK
    /// has not arrived or tracked topics still await their fresh REGACK.
    pub fn resume_complete(&self) -> bool {
        !self.resuming && self.resume_pending.is_empty()
    }

    /// Drains payloads of publishes that exhausted retries or were rejected
    /// by the broker, so transports can buffer and replay them instead of
    /// losing the records.
    pub fn take_dead_letters(&mut self) -> Vec<(u16, Vec<u8>)> {
        std::mem::take(&mut self.dead_letters)
    }

    /// In-flight message ids matching `filter`, in original publish order
    /// (by [`InFlight::seq`], which unlike the u16 msg id never wraps).
    fn inflight_in_publish_order(&self, filter: impl Fn(&InFlight) -> bool) -> Vec<u16> {
        let mut ids: Vec<(u64, u16)> = self
            .inflight
            .iter()
            .filter(|(_, f)| filter(f))
            .map(|(id, f)| (f.seq, *id))
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(|(_, id)| id).collect()
    }

    fn alloc_msg_id(&mut self) -> u16 {
        loop {
            let id = self.next_msg_id;
            self.next_msg_id = self.next_msg_id.wrapping_add(1);
            if self.next_msg_id == 0 {
                self.next_msg_id = 1;
            }
            // A live id may belong to a data publish OR a control
            // transaction (SUBSCRIBE/UNSUBSCRIBE share the message-id space
            // with PUBLISH per spec §5.4) — handing a publish an
            // outstanding control id would overwrite that transaction's
            // retransmission state.
            if id != 0
                && !self.inflight.contains_key(&id)
                && !self.pending_register.contains_key(&id)
                && !self.pending_control.contains_key(&id)
            {
                return id;
            }
        }
    }

    /// Initiates the connection handshake. The CONNECT is retransmitted
    /// on `Tretry` until the CONNACK arrives or retries are exhausted.
    pub fn connect(&mut self, now: Nanos) -> Vec<Output> {
        self.state = ClientState::Connecting;
        self.connect_sent_at = Some(now);
        self.last_tx = now;
        let packet = Packet::Connect {
            clean_session: self.config.clean_session,
            duration: self.config.keep_alive.as_secs().min(u16::MAX as u64) as u16,
            client_id: self.config.client_id.clone(),
        };
        self.pending_control.insert(
            0,
            PendingControl {
                packet: packet.clone(),
                last_sent: now,
                retries: 0,
            },
        );
        vec![Output::Send(packet)]
    }

    /// Re-initiates the connection handshake after a lost connection,
    /// requesting session continuation (`clean_session = false`). On the
    /// accepted CONNACK the client re-registers every tracked topic,
    /// re-subscribes every acknowledged filter, and retransmits in-flight
    /// QoS 1/2 publishes with the DUP flag — remapping their topic ids if
    /// the broker (e.g. after a restart) assigns different ones.
    pub fn reconnect(&mut self, now: Nanos) -> Vec<Output> {
        self.state = ClientState::Connecting;
        self.connect_sent_at = Some(now);
        self.last_tx = now;
        self.ping_outstanding_since = None;
        self.resuming = true;
        // Stale control transactions from the dead connection are dropped;
        // resumed state is rebuilt from the tracked registrations and
        // subscriptions once the CONNACK arrives.
        self.pending_control.clear();
        self.pending_register.clear();
        self.resume_pending.clear();
        // The completed-QoS2 window only guards against datagrams delayed
        // *within* one connection epoch; across a reconnect it must reset,
        // because a broker restarted with fresh state legitimately reuses
        // msg_ids for new messages. `inbound_qos2` (handshakes still open)
        // is kept: a persisted-state broker resumes those with DUP
        // retransmissions that must still dedup.
        self.completed_qos2.clear();
        let packet = Packet::Connect {
            clean_session: false,
            duration: self.config.keep_alive.as_secs().min(u16::MAX as u64) as u16,
            client_id: self.config.client_id.clone(),
        };
        self.pending_control.insert(
            0,
            PendingControl {
                packet: packet.clone(),
                last_sent: now,
                retries: 0,
            },
        );
        vec![Output::Send(packet)]
    }

    /// Requests a topic-id for `topic_name`. The id arrives via
    /// [`ClientEvent::Registered`].
    pub fn register(&mut self, topic_name: &str, now: Nanos) -> Result<(u16, Vec<Output>), Error> {
        if self.state != ClientState::Connected {
            return Err(Error::BadState("register before connected"));
        }
        let msg_id = self.alloc_msg_id();
        self.pending_register.insert(msg_id, topic_name.to_owned());
        self.last_tx = now;
        let packet = Packet::Register {
            topic_id: 0,
            msg_id,
            topic_name: topic_name.to_owned(),
        };
        self.pending_control.insert(
            msg_id,
            PendingControl {
                packet: packet.clone(),
                last_sent: now,
                retries: 0,
            },
        );
        Ok((msg_id, vec![Output::Send(packet)]))
    }

    /// Publishes a payload to a registered topic id.
    ///
    /// Returns the message id (0 for QoS 0) and the packets to send. QoS
    /// 1/2 completion is signalled by [`ClientEvent::PublishDone`].
    pub fn publish(
        &mut self,
        topic: TopicRef,
        payload: Vec<u8>,
        qos: QoS,
        now: Nanos,
    ) -> Result<(u16, Vec<Output>), Error> {
        if self.state != ClientState::Connected {
            return Err(Error::BadState("publish before connected"));
        }
        if matches!(topic, TopicRef::Name(_)) {
            return Err(Error::BadState("PUBLISH requires a topic id"));
        }
        self.last_tx = now;
        match qos {
            QoS::AtMostOnce => Ok((
                0,
                vec![Output::Send(Packet::Publish {
                    dup: false,
                    qos,
                    retain: false,
                    topic,
                    msg_id: 0,
                    payload,
                })],
            )),
            QoS::AtLeastOnce | QoS::ExactlyOnce => {
                if !self.can_publish() {
                    return Err(Error::InflightFull);
                }
                let msg_id = self.alloc_msg_id();
                // The retransmission copy kept in `inflight` is the original
                // `payload`; the wire packet gets a pooled copy so the
                // steady-state publish path allocates nothing.
                let mut wire_payload = self.spare_payloads.pop().unwrap_or_default();
                wire_payload.clear();
                wire_payload.extend_from_slice(&payload);
                let packet = Packet::Publish {
                    dup: false,
                    qos,
                    retain: false,
                    topic: topic.clone(),
                    msg_id,
                    payload: wire_payload,
                };
                let seq = self.next_seq;
                self.next_seq += 1;
                self.inflight.insert(
                    msg_id,
                    InFlight {
                        topic,
                        payload,
                        qos,
                        retain: false,
                        phase: if qos == QoS::AtLeastOnce {
                            OutPhase::Puback
                        } else {
                            OutPhase::Pubrec
                        },
                        last_sent: now,
                        retries: 0,
                        seq,
                    },
                );
                Ok((msg_id, vec![Output::Send(packet)]))
            }
        }
    }

    /// Subscribes to a topic filter.
    pub fn subscribe(
        &mut self,
        filter: &str,
        qos: QoS,
        now: Nanos,
    ) -> Result<(u16, Vec<Output>), Error> {
        if self.state != ClientState::Connected {
            return Err(Error::BadState("subscribe before connected"));
        }
        if !crate::topic::filter_is_valid(filter) {
            return Err(Error::BadState("invalid topic filter"));
        }
        let msg_id = self.alloc_msg_id();
        self.pending_subscribe
            .insert(msg_id, (filter.to_owned(), qos));
        self.last_tx = now;
        let packet = Packet::Subscribe {
            dup: false,
            qos,
            msg_id,
            topic: TopicRef::Name(filter.to_owned()),
        };
        self.pending_control.insert(
            msg_id,
            PendingControl {
                packet: packet.clone(),
                last_sent: now,
                retries: 0,
            },
        );
        Ok((msg_id, vec![Output::Send(packet)]))
    }

    /// Starts a graceful disconnect: the session transitions to
    /// `Disconnected` immediately (spec §6.15 — the client is disconnected
    /// the moment it sends DISCONNECT, whether or not the broker's reply
    /// arrives) and timer state is cleared so no keep-alive or control
    /// retransmission fires on the torn-down session. In-flight publishes
    /// and tracked registrations are retained for a later
    /// [`Client::reconnect`].
    pub fn disconnect(&mut self, now: Nanos) -> Vec<Output> {
        self.last_tx = now;
        self.state = ClientState::Disconnected;
        self.ping_outstanding_since = None;
        self.connect_sent_at = None;
        self.pending_control.clear();
        vec![Output::Send(Packet::Disconnect { duration: None })]
    }

    /// Feeds one raw inbound datagram. PUBLISH payloads decode borrowed
    /// and are copied once into a buffer from the spare-payload pool, so
    /// a subscriber's steady-state receive path reuses the same backing
    /// allocations instead of building a fresh `Vec` per message.
    pub fn on_datagram(&mut self, datagram: &[u8], now: Nanos) -> Result<Vec<Output>, Error> {
        match Packet::decode_borrowed(datagram)? {
            PacketRef::Publish {
                dup,
                qos,
                retain,
                topic,
                msg_id,
                payload,
            } => {
                let mut owned = self.take_spare_payload().unwrap_or_default();
                owned.extend_from_slice(payload);
                Ok(self.on_packet(
                    Packet::Publish {
                        dup,
                        qos,
                        retain,
                        topic,
                        msg_id,
                        payload: owned,
                    },
                    now,
                ))
            }
            PacketRef::Owned(p) => Ok(self.on_packet(p, now)),
        }
    }

    /// Feeds one inbound packet.
    pub fn on_packet(&mut self, packet: Packet, now: Nanos) -> Vec<Output> {
        let mut out = Vec::new();
        match packet {
            Packet::ConnAck { code } => {
                self.pending_control.remove(&0);
                if code == ReturnCode::Accepted {
                    self.state = ClientState::Connected;
                    self.ping_outstanding_since = None;
                    out.push(Output::Event(ClientEvent::Connected));
                    if self.resuming {
                        self.resuming = false;
                        self.resume_session(now, &mut out);
                    }
                } else {
                    self.state = ClientState::Disconnected;
                    self.resuming = false;
                    out.push(Output::Event(ClientEvent::ConnectFailed(code)));
                }
            }
            Packet::RegAck {
                topic_id,
                msg_id,
                code,
            } => {
                self.pending_control.remove(&msg_id);
                if let Some(topic_name) = self.pending_register.remove(&msg_id) {
                    if code == ReturnCode::Accepted {
                        self.registered_topics.insert(topic_name.clone(), topic_id);
                        if let Some(old_id) = self.resume_pending.remove(&topic_name) {
                            self.retransmit_remapped(old_id, topic_id, now, &mut out);
                        }
                        out.push(Output::Event(ClientEvent::Registered {
                            topic_name,
                            topic_id,
                        }));
                    } else if let Some(old_id) = self.resume_pending.remove(&topic_name) {
                        // The broker refused to resume this registration:
                        // stop tracking the topic (so resume_complete()
                        // can report success) and fail its in-flight
                        // publishes into the dead-letter queue instead of
                        // leaving them stuck un-remapped forever.
                        self.registered_topics.remove(&topic_name);
                        let ids =
                            self.inflight_in_publish_order(|f| f.topic == TopicRef::Id(old_id));
                        for id in ids {
                            if let Some(f) = self.inflight.remove(&id) {
                                self.dead_letters.push((id, f.payload));
                            }
                            out.push(Output::Event(ClientEvent::PublishRejected {
                                msg_id: id,
                                code,
                            }));
                        }
                    }
                }
            }
            Packet::SubAck {
                qos,
                topic_id,
                msg_id,
                code,
            } => {
                self.pending_control.remove(&msg_id);
                if code == ReturnCode::Accepted {
                    if let Some((filter, granted)) = self.pending_subscribe.remove(&msg_id) {
                        self.subscribed_filters.retain(|(f, _)| f != &filter);
                        self.subscribed_filters.push((filter, granted));
                    }
                    out.push(Output::Event(ClientEvent::Subscribed {
                        msg_id,
                        topic_id,
                        qos,
                    }));
                } else {
                    self.pending_subscribe.remove(&msg_id);
                }
            }
            Packet::UnsubAck { msg_id } => {
                self.pending_control.remove(&msg_id);
                out.push(Output::Event(ClientEvent::Unsubscribed { msg_id }));
            }
            Packet::PubAck { msg_id, code, .. } => {
                if code != ReturnCode::Accepted {
                    // A rejection (e.g. InvalidTopicId from a broker that
                    // lost the registration across a restart) terminates the
                    // exchange for QoS 1 *and* QoS 2 — reporting it as
                    // PublishDone would silently lose the record. Park the
                    // payload for replay after re-registration.
                    if let Some(f) = self.inflight.remove(&msg_id) {
                        self.dead_letters.push((msg_id, f.payload));
                        out.push(Output::Event(ClientEvent::PublishRejected { msg_id, code }));
                    }
                } else if let Some(f) = self.inflight.get(&msg_id) {
                    if matches!(f.phase, OutPhase::Puback) {
                        if let Some(f) = self.inflight.remove(&msg_id) {
                            self.reclaim_payload(f.payload);
                        }
                        out.push(Output::Event(ClientEvent::PublishDone { msg_id }));
                    }
                }
            }
            Packet::PubRec { msg_id } => {
                if let Some(f) = self.inflight.get_mut(&msg_id) {
                    f.phase = OutPhase::Pubcomp;
                    f.last_sent = now;
                    f.retries = 0;
                }
                // Always answer PUBREC (idempotent PUBREL).
                self.last_tx = now;
                out.push(Output::Send(Packet::PubRel { msg_id }));
            }
            Packet::PubComp { msg_id } => {
                if let Some(f) = self.inflight.remove(&msg_id) {
                    self.reclaim_payload(f.payload);
                    out.push(Output::Event(ClientEvent::PublishDone { msg_id }));
                }
            }
            Packet::Publish {
                qos,
                topic,
                msg_id,
                payload,
                ..
            } => match qos {
                QoS::AtMostOnce => {
                    out.push(Output::Event(ClientEvent::Message { topic, payload }));
                }
                QoS::AtLeastOnce => {
                    out.push(Output::Event(ClientEvent::Message {
                        topic: topic.clone(),
                        payload,
                    }));
                    self.last_tx = now;
                    let topic_id = match topic {
                        TopicRef::Id(id) | TopicRef::Predefined(id) => id,
                        TopicRef::Name(_) => 0,
                    };
                    out.push(Output::Send(Packet::PubAck {
                        topic_id,
                        msg_id,
                        code: ReturnCode::Accepted,
                    }));
                }
                QoS::ExactlyOnce => {
                    // Deliver on first receipt; suppress DUP re-deliveries
                    // while the handshake is pending AND for the
                    // recently-completed window (a delayed copy can arrive
                    // after the PUBREL).
                    let dup = self.inbound_qos2.contains_key(&msg_id)
                        || self.completed_qos2.contains(&msg_id);
                    if !dup {
                        self.inbound_qos2.insert(msg_id, ());
                        out.push(Output::Event(ClientEvent::Message { topic, payload }));
                    }
                    self.last_tx = now;
                    out.push(Output::Send(Packet::PubRec { msg_id }));
                }
            },
            Packet::PubRel { msg_id } => {
                if self.inbound_qos2.remove(&msg_id).is_some() {
                    if self.completed_qos2.len() >= COMPLETED_QOS2_WINDOW {
                        self.completed_qos2.pop_front();
                    }
                    self.completed_qos2.push_back(msg_id);
                }
                self.last_tx = now;
                out.push(Output::Send(Packet::PubComp { msg_id }));
            }
            Packet::PingResp => {
                self.ping_outstanding_since = None;
            }
            Packet::PingReq => {
                self.last_tx = now;
                out.push(Output::Send(Packet::PingResp));
            }
            Packet::Disconnect { .. } => {
                self.state = ClientState::Disconnected;
                out.push(Output::Event(ClientEvent::Disconnected));
            }
            // Broker-originated REGISTER (topic id assignment for
            // wildcard subscribers): acknowledge.
            Packet::Register {
                topic_id, msg_id, ..
            } => {
                self.last_tx = now;
                out.push(Output::Send(Packet::RegAck {
                    topic_id,
                    msg_id,
                    code: ReturnCode::Accepted,
                }));
            }
            Packet::CongestionAdvisory { level } => {
                out.push(Output::Event(ClientEvent::Congestion { level }));
            }
            _ => {}
        }
        out
    }

    /// Emits the session-resumption traffic after a reconnect CONNACK:
    /// fresh REGISTERs for every tracked topic, fresh SUBSCRIBEs for every
    /// acknowledged filter, and immediate DUP retransmission of in-flight
    /// publishes whose topic ids cannot change (predefined ids). In-flight
    /// publishes on registered ids wait for their fresh REGACK so they can
    /// be remapped if the broker assigns a different id.
    fn resume_session(&mut self, now: Nanos, out: &mut Vec<Output>) {
        let mut filters: Vec<(String, QoS)> = self.subscribed_filters.clone();
        filters.sort_by(|a, b| a.0.cmp(&b.0));
        for (filter, qos) in filters {
            let msg_id = self.alloc_msg_id();
            self.pending_subscribe.insert(msg_id, (filter.clone(), qos));
            let packet = Packet::Subscribe {
                dup: false,
                qos,
                msg_id,
                topic: TopicRef::Name(filter),
            };
            self.pending_control.insert(
                msg_id,
                PendingControl {
                    packet: packet.clone(),
                    last_sent: now,
                    retries: 0,
                },
            );
            out.push(Output::Send(packet));
        }
        let mut topics: Vec<(String, u16)> = self
            .registered_topics
            .iter()
            .map(|(n, id)| (n.clone(), *id))
            .collect();
        topics.sort();
        for (name, old_id) in topics {
            self.resume_pending.insert(name.clone(), old_id);
            let msg_id = self.alloc_msg_id();
            self.pending_register.insert(msg_id, name.clone());
            let packet = Packet::Register {
                topic_id: 0,
                msg_id,
                topic_name: name,
            };
            self.pending_control.insert(
                msg_id,
                PendingControl {
                    packet: packet.clone(),
                    last_sent: now,
                    retries: 0,
                },
            );
            out.push(Output::Send(packet));
        }
        // In-flight publishes whose topic reference is not subject to
        // re-registration retransmit immediately.
        let resume_pending = &self.resume_pending;
        let ids = self.inflight_in_publish_order(|f| match f.topic {
            TopicRef::Predefined(_) | TopicRef::Name(_) => true,
            TopicRef::Id(id) => !resume_pending.values().any(|old| *old == id),
        });
        for id in ids {
            self.retransmit_inflight(id, now, out);
        }
        self.last_tx = now;
    }

    /// Remaps in-flight publishes from a pre-reconnect topic id to the
    /// freshly registered one and retransmits them with the DUP flag.
    fn retransmit_remapped(&mut self, old_id: u16, new_id: u16, now: Nanos, out: &mut Vec<Output>) {
        let ids = self.inflight_in_publish_order(|f| f.topic == TopicRef::Id(old_id));
        for id in ids {
            if let Some(f) = self.inflight.get_mut(&id) {
                f.topic = TopicRef::Id(new_id);
            }
            self.retransmit_inflight(id, now, out);
        }
    }

    /// Re-sends one in-flight message (DUP publish or PUBREL, per phase)
    /// with a reset retry budget.
    fn retransmit_inflight(&mut self, id: u16, now: Nanos, out: &mut Vec<Output>) {
        let mut wire_payload = self.spare_payloads.pop().unwrap_or_default();
        let Some(f) = self.inflight.get_mut(&id) else {
            self.spare_payloads.push(wire_payload);
            return;
        };
        f.retries = 0;
        f.last_sent = now;
        let packet = match f.phase {
            OutPhase::Puback | OutPhase::Pubrec => {
                wire_payload.clear();
                wire_payload.extend_from_slice(&f.payload);
                Packet::Publish {
                    dup: true,
                    qos: f.qos,
                    retain: f.retain,
                    topic: f.topic.clone(),
                    msg_id: id,
                    payload: wire_payload,
                }
            }
            OutPhase::Pubcomp => {
                self.spare_payloads.push(wire_payload);
                Packet::PubRel { msg_id: id }
            }
        };
        self.last_tx = now;
        out.push(Output::Send(packet));
    }

    /// Drives timers: retransmissions and keep-alive. Call at least every
    /// `retry_timeout / 2`.
    pub fn on_tick(&mut self, now: Nanos) -> Vec<Output> {
        let mut out = Vec::new();
        let retry_ns = self.config.retry_timeout.as_nanos() as u64;

        // Control-packet retransmission (spec: retransmit any message
        // awaiting a reply on Tretry, up to Nretry times). Runs in the
        // Connecting state too, so lost CONNECTs self-heal.
        let mut control_ids: Vec<u16> = self.pending_control.keys().copied().collect();
        control_ids.sort_unstable();
        for id in control_ids {
            let Some(c) = self.pending_control.get_mut(&id) else {
                continue;
            };
            if now.saturating_sub(c.last_sent) < retry_ns {
                continue;
            }
            if c.retries >= self.config.max_retries {
                self.pending_control.remove(&id);
                if id == 0 {
                    self.state = ClientState::Disconnected;
                    out.push(Output::Event(ClientEvent::ConnectFailed(
                        ReturnCode::Congestion,
                    )));
                }
                continue;
            }
            c.retries += 1;
            c.last_sent = now;
            let mut packet = c.packet.clone();
            if let Packet::Subscribe { dup, .. } = &mut packet {
                *dup = true;
            }
            self.last_tx = now;
            out.push(Output::Send(packet));
        }

        if self.state != ClientState::Connected {
            return out;
        }

        let mut failed = Vec::new();
        // Deterministic retransmission in original publish order (seq, not
        // msg id, which wraps).
        let ids = self.inflight_in_publish_order(|_| true);
        for id in ids {
            let Some(f) = self.inflight.get_mut(&id) else {
                continue;
            };
            if now.saturating_sub(f.last_sent) < retry_ns {
                continue;
            }
            if f.retries >= self.config.max_retries {
                failed.push(id);
                continue;
            }
            f.retries += 1;
            f.last_sent = now;
            let packet = match f.phase {
                OutPhase::Puback | OutPhase::Pubrec => {
                    let mut wire_payload = self.spare_payloads.pop().unwrap_or_default();
                    wire_payload.clear();
                    wire_payload.extend_from_slice(&f.payload);
                    Packet::Publish {
                        dup: true,
                        qos: f.qos,
                        retain: f.retain,
                        topic: f.topic.clone(),
                        msg_id: id,
                        payload: wire_payload,
                    }
                }
                OutPhase::Pubcomp => Packet::PubRel { msg_id: id },
            };
            self.last_tx = now;
            out.push(Output::Send(packet));
        }
        for id in failed {
            if let Some(f) = self.inflight.remove(&id) {
                match f.phase {
                    // Retry exhaustion usually means the link is down, not
                    // that the record is unwanted — park the payload for
                    // replay after a reconnect instead of dropping it.
                    OutPhase::Puback | OutPhase::Pubrec => {
                        self.dead_letters.push((id, f.payload));
                    }
                    // A PUBREC was received, so the broker provably holds
                    // (and forwarded) the message — replaying it as a fresh
                    // publish would double-deliver; only the handshake
                    // cleanup is abandoned.
                    OutPhase::Pubcomp => self.reclaim_payload(f.payload),
                }
            }
            out.push(Output::Event(ClientEvent::PublishFailed { msg_id: id }));
        }

        // Keep-alive.
        let ka_ns = self.config.keep_alive.as_nanos() as u64;
        if ka_ns > 0 {
            match self.ping_outstanding_since {
                Some(since) if now.saturating_sub(since) > retry_ns => {
                    self.ping_outstanding_since = None;
                    out.push(Output::Event(ClientEvent::PingTimeout));
                }
                None if now.saturating_sub(self.last_tx) >= ka_ns => {
                    self.ping_outstanding_since = Some(now);
                    self.last_tx = now;
                    out.push(Output::Send(Packet::PingReq));
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connected_client() -> Client {
        let mut c = Client::new(ClientConfig::new("dev1"));
        c.connect(0);
        c.on_packet(
            Packet::ConnAck {
                code: ReturnCode::Accepted,
            },
            0,
        );
        assert_eq!(c.state(), ClientState::Connected);
        c
    }

    fn sends(outputs: &[Output]) -> Vec<&Packet> {
        outputs
            .iter()
            .filter_map(|o| match o {
                Output::Send(p) => Some(p),
                _ => None,
            })
            .collect()
    }

    fn events(outputs: &[Output]) -> Vec<&ClientEvent> {
        outputs
            .iter()
            .filter_map(|o| match o {
                Output::Event(e) => Some(e),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn connect_handshake() {
        let mut c = Client::new(ClientConfig::new("dev1"));
        let out = c.connect(0);
        assert!(matches!(out[0], Output::Send(Packet::Connect { .. })));
        assert_eq!(c.state(), ClientState::Connecting);
        let out = c.on_packet(
            Packet::ConnAck {
                code: ReturnCode::Accepted,
            },
            1,
        );
        assert_eq!(events(&out), vec![&ClientEvent::Connected]);
    }

    #[test]
    fn connect_rejection_reported() {
        let mut c = Client::new(ClientConfig::new("dev1"));
        c.connect(0);
        let out = c.on_packet(
            Packet::ConnAck {
                code: ReturnCode::Congestion,
            },
            1,
        );
        assert_eq!(
            events(&out),
            vec![&ClientEvent::ConnectFailed(ReturnCode::Congestion)]
        );
        assert_eq!(c.state(), ClientState::Disconnected);
    }

    #[test]
    fn register_roundtrip() {
        let mut c = connected_client();
        let (msg_id, out) = c.register("provlight/wf1/dev1", 10).unwrap();
        assert!(matches!(
            sends(&out)[0],
            Packet::Register { topic_id: 0, .. }
        ));
        let out = c.on_packet(
            Packet::RegAck {
                topic_id: 42,
                msg_id,
                code: ReturnCode::Accepted,
            },
            20,
        );
        assert_eq!(
            events(&out),
            vec![&ClientEvent::Registered {
                topic_name: "provlight/wf1/dev1".into(),
                topic_id: 42
            }]
        );
    }

    #[test]
    fn qos0_publish_has_no_state() {
        let mut c = connected_client();
        let (id, out) = c
            .publish(TopicRef::Id(1), vec![1, 2], QoS::AtMostOnce, 5)
            .unwrap();
        assert_eq!(id, 0);
        assert_eq!(sends(&out).len(), 1);
        assert_eq!(c.inflight_len(), 0);
    }

    #[test]
    fn qos1_publish_completes_on_puback() {
        let mut c = connected_client();
        let (id, _) = c
            .publish(TopicRef::Id(1), vec![1], QoS::AtLeastOnce, 5)
            .unwrap();
        assert_eq!(c.inflight_len(), 1);
        let out = c.on_packet(
            Packet::PubAck {
                topic_id: 1,
                msg_id: id,
                code: ReturnCode::Accepted,
            },
            6,
        );
        assert_eq!(events(&out), vec![&ClientEvent::PublishDone { msg_id: id }]);
        assert_eq!(c.inflight_len(), 0);
    }

    #[test]
    fn qos2_four_way_handshake() {
        let mut c = connected_client();
        let (id, _) = c
            .publish(TopicRef::Id(1), vec![9], QoS::ExactlyOnce, 5)
            .unwrap();
        // PUBREC -> client answers PUBREL.
        let out = c.on_packet(Packet::PubRec { msg_id: id }, 6);
        assert_eq!(sends(&out), vec![&Packet::PubRel { msg_id: id }]);
        assert_eq!(c.inflight_len(), 1);
        // PUBCOMP -> done.
        let out = c.on_packet(Packet::PubComp { msg_id: id }, 7);
        assert_eq!(events(&out), vec![&ClientEvent::PublishDone { msg_id: id }]);
        assert_eq!(c.inflight_len(), 0);
    }

    #[test]
    fn publish_retransmits_with_dup_then_fails() {
        let mut cfg = ClientConfig::new("dev1");
        cfg.retry_timeout = Duration::from_secs(1);
        cfg.max_retries = 2;
        let mut c = Client::new(cfg);
        c.connect(0);
        c.on_packet(
            Packet::ConnAck {
                code: ReturnCode::Accepted,
            },
            0,
        );
        let (id, _) = c
            .publish(TopicRef::Id(1), vec![1], QoS::ExactlyOnce, 0)
            .unwrap();
        let s = 1_000_000_000u64;
        // First retry.
        let out = c.on_tick(s + 1);
        match sends(&out)[0] {
            Packet::Publish { dup, msg_id, .. } => {
                assert!(*dup);
                assert_eq!(*msg_id, id);
            }
            p => panic!("unexpected {p:?}"),
        }
        // Second retry.
        assert_eq!(sends(&c.on_tick(2 * s + 2)).len(), 1);
        // Exhausted.
        let out = c.on_tick(3 * s + 3);
        assert_eq!(
            events(&out),
            vec![&ClientEvent::PublishFailed { msg_id: id }]
        );
        assert_eq!(c.inflight_len(), 0);
    }

    #[test]
    fn inflight_window_enforced() {
        let mut cfg = ClientConfig::new("dev1");
        cfg.max_inflight = 2;
        let mut c = Client::new(cfg);
        c.connect(0);
        c.on_packet(
            Packet::ConnAck {
                code: ReturnCode::Accepted,
            },
            0,
        );
        c.publish(TopicRef::Id(1), vec![], QoS::ExactlyOnce, 0)
            .unwrap();
        c.publish(TopicRef::Id(1), vec![], QoS::ExactlyOnce, 0)
            .unwrap();
        assert!(!c.can_publish());
        let err = c
            .publish(TopicRef::Id(1), vec![], QoS::ExactlyOnce, 0)
            .unwrap_err();
        assert_eq!(err, Error::InflightFull);
    }

    #[test]
    fn inbound_qos2_delivers_exactly_once() {
        let mut c = connected_client();
        let publish = Packet::Publish {
            dup: false,
            qos: QoS::ExactlyOnce,
            retain: false,
            topic: TopicRef::Id(3),
            msg_id: 77,
            payload: vec![5],
        };
        let out = c.on_packet(publish.clone(), 1);
        assert_eq!(events(&out).len(), 1);
        assert_eq!(sends(&out), vec![&Packet::PubRec { msg_id: 77 }]);
        // DUP redelivery before PUBREL: no second Message event.
        let out = c.on_packet(publish, 2);
        assert_eq!(events(&out).len(), 0);
        assert_eq!(sends(&out), vec![&Packet::PubRec { msg_id: 77 }]);
        // PUBREL clears the id and is answered with PUBCOMP.
        let out = c.on_packet(Packet::PubRel { msg_id: 77 }, 3);
        assert_eq!(sends(&out), vec![&Packet::PubComp { msg_id: 77 }]);
    }

    #[test]
    fn late_duplicate_after_pubrel_is_still_suppressed() {
        let mut c = connected_client();
        let publish = Packet::Publish {
            dup: false,
            qos: QoS::ExactlyOnce,
            retain: false,
            topic: TopicRef::Id(3),
            msg_id: 77,
            payload: vec![5],
        };
        let out = c.on_packet(publish.clone(), 1);
        assert_eq!(events(&out).len(), 1);
        c.on_packet(Packet::PubRel { msg_id: 77 }, 2);

        // A delayed copy of the PUBLISH arrives after the handshake
        // completed (reordering link): no second Message event, but the
        // PUBREC still goes out so the sender's handshake can re-finish.
        let out = c.on_packet(publish, 3);
        assert_eq!(events(&out).len(), 0, "late duplicate delivered twice");
        assert_eq!(sends(&out), vec![&Packet::PubRec { msg_id: 77 }]);

        // The window is bounded: after enough *other* completed
        // handshakes, the oldest id ages out and can be legitimately
        // reused for a brand-new message.
        for id in 100..100 + COMPLETED_QOS2_WINDOW as u16 {
            c.on_packet(
                Packet::Publish {
                    dup: false,
                    qos: QoS::ExactlyOnce,
                    retain: false,
                    topic: TopicRef::Id(3),
                    msg_id: id,
                    payload: vec![1],
                },
                4,
            );
            c.on_packet(Packet::PubRel { msg_id: id }, 5);
        }
        let out = c.on_packet(
            Packet::Publish {
                dup: false,
                qos: QoS::ExactlyOnce,
                retain: false,
                topic: TopicRef::Id(3),
                msg_id: 77,
                payload: vec![6],
            },
            6,
        );
        assert_eq!(events(&out).len(), 1, "evicted id blocked a new message");
    }

    #[test]
    fn keepalive_ping_and_timeout() {
        let mut cfg = ClientConfig::new("dev1");
        cfg.keep_alive = Duration::from_secs(10);
        cfg.retry_timeout = Duration::from_secs(2);
        let mut c = Client::new(cfg);
        c.connect(0);
        c.on_packet(
            Packet::ConnAck {
                code: ReturnCode::Accepted,
            },
            0,
        );
        let s = 1_000_000_000u64;
        let out = c.on_tick(10 * s);
        assert_eq!(sends(&out), vec![&Packet::PingReq]);
        // PINGRESP clears it.
        c.on_packet(Packet::PingResp, 10 * s + 1);
        assert!(events(&c.on_tick(11 * s)).is_empty());
        // Next ping unanswered long enough -> timeout event.
        let out = c.on_tick(21 * s);
        assert_eq!(sends(&out), vec![&Packet::PingReq]);
        let out = c.on_tick(24 * s);
        assert_eq!(events(&out), vec![&ClientEvent::PingTimeout]);
    }

    #[test]
    fn operations_require_connection() {
        let mut c = Client::new(ClientConfig::new("dev1"));
        assert!(c.register("t", 0).is_err());
        assert!(c
            .publish(TopicRef::Id(1), vec![], QoS::AtMostOnce, 0)
            .is_err());
        assert!(c.subscribe("t/#", QoS::AtMostOnce, 0).is_err());
    }

    #[test]
    fn subscribe_validates_filter() {
        let mut c = connected_client();
        assert!(c.subscribe("a/#/b", QoS::AtMostOnce, 0).is_err());
        let (_, out) = c.subscribe("a/+/b", QoS::ExactlyOnce, 0).unwrap();
        assert!(matches!(sends(&out)[0], Packet::Subscribe { .. }));
    }

    #[test]
    fn connect_retransmits_until_connack() {
        let mut cfg = ClientConfig::new("dev1");
        cfg.retry_timeout = Duration::from_secs(1);
        cfg.max_retries = 3;
        let mut c = Client::new(cfg);
        c.connect(0);
        let s = 1_000_000_000u64;
        // Lost CONNACK: the client re-sends CONNECT on each Tretry.
        let out = c.on_tick(s + 1);
        assert!(matches!(sends(&out)[0], Packet::Connect { .. }));
        assert_eq!(c.state(), ClientState::Connecting);
        // CONNACK finally arrives; retransmission stops.
        c.on_packet(
            Packet::ConnAck {
                code: ReturnCode::Accepted,
            },
            s + 2,
        );
        assert!(sends(&c.on_tick(3 * s))
            .iter()
            .all(|p| !matches!(p, Packet::Connect { .. })));
    }

    #[test]
    fn connect_gives_up_after_retries() {
        let mut cfg = ClientConfig::new("dev1");
        cfg.retry_timeout = Duration::from_secs(1);
        cfg.max_retries = 2;
        let mut c = Client::new(cfg);
        c.connect(0);
        let s = 1_000_000_000u64;
        assert_eq!(sends(&c.on_tick(s + 1)).len(), 1);
        assert_eq!(sends(&c.on_tick(2 * s + 2)).len(), 1);
        let out = c.on_tick(3 * s + 3);
        assert!(matches!(events(&out)[0], ClientEvent::ConnectFailed(_)));
        assert_eq!(c.state(), ClientState::Disconnected);
    }

    #[test]
    fn register_and_subscribe_retransmit() {
        let mut cfg = ClientConfig::new("dev1");
        cfg.retry_timeout = Duration::from_secs(1);
        let mut c = Client::new(cfg);
        c.connect(0);
        c.on_packet(
            Packet::ConnAck {
                code: ReturnCode::Accepted,
            },
            0,
        );
        let (reg_id, _) = c.register("topic/a", 0).unwrap();
        let (sub_id, _) = c.subscribe("topic/#", QoS::AtLeastOnce, 0).unwrap();
        let s = 1_000_000_000u64;
        let out = c.on_tick(s + 1);
        let resent = sends(&out);
        assert!(resent
            .iter()
            .any(|p| matches!(p, Packet::Register { msg_id, .. } if *msg_id == reg_id)));
        assert!(resent.iter().any(
            |p| matches!(p, Packet::Subscribe { msg_id, dup: true, .. } if *msg_id == sub_id)
        ));
        // Acks stop the retransmission.
        c.on_packet(
            Packet::RegAck {
                topic_id: 5,
                msg_id: reg_id,
                code: ReturnCode::Accepted,
            },
            s + 2,
        );
        c.on_packet(
            Packet::SubAck {
                qos: QoS::AtLeastOnce,
                topic_id: 0,
                msg_id: sub_id,
                code: ReturnCode::Accepted,
            },
            s + 2,
        );
        let out = c.on_tick(3 * s);
        assert!(sends(&out)
            .iter()
            .all(|p| !matches!(p, Packet::Register { .. } | Packet::Subscribe { .. })));
    }

    #[test]
    fn alloc_msg_id_skips_outstanding_control_ids() {
        let mut c = connected_client();
        // SUBSCRIBE takes msg id 1 and parks it in pending_control.
        let (sub_id, _) = c.subscribe("t/#", QoS::AtLeastOnce, 0).unwrap();
        assert_eq!(sub_id, 1);
        // Force the allocator to wrap back onto the outstanding control id.
        c.next_msg_id = sub_id;
        let (pub_id, _) = c
            .publish(TopicRef::Id(1), vec![1], QoS::AtLeastOnce, 0)
            .unwrap();
        assert_ne!(
            pub_id, sub_id,
            "publish must not reuse an outstanding SUBSCRIBE id"
        );
        // The SUBSCRIBE's retransmission state survived the allocation.
        assert!(c.pending_control.contains_key(&sub_id));
    }

    #[test]
    fn disconnect_transitions_state_and_clears_timers() {
        let mut cfg = ClientConfig::new("dev1");
        cfg.keep_alive = Duration::from_secs(1);
        let mut c = Client::new(cfg);
        c.connect(0);
        c.on_packet(
            Packet::ConnAck {
                code: ReturnCode::Accepted,
            },
            0,
        );
        let out = c.disconnect(5);
        assert!(matches!(sends(&out)[0], Packet::Disconnect { .. }));
        assert_eq!(c.state(), ClientState::Disconnected);
        // Publishing on the torn-down session is rejected.
        assert!(c
            .publish(TopicRef::Id(1), vec![], QoS::AtMostOnce, 6)
            .is_err());
        // No keep-alive pings fire on a disconnected session.
        let s = 1_000_000_000u64;
        assert!(c.on_tick(100 * s).is_empty());
    }

    #[test]
    fn puback_rejection_is_surfaced_not_publish_done() {
        let mut c = connected_client();
        let (id, _) = c
            .publish(TopicRef::Id(9), vec![42], QoS::AtLeastOnce, 0)
            .unwrap();
        let out = c.on_packet(
            Packet::PubAck {
                topic_id: 9,
                msg_id: id,
                code: ReturnCode::InvalidTopicId,
            },
            1,
        );
        assert_eq!(
            events(&out),
            vec![&ClientEvent::PublishRejected {
                msg_id: id,
                code: ReturnCode::InvalidTopicId
            }]
        );
        assert_eq!(c.inflight_len(), 0);
        // The payload is recoverable for replay after re-registration.
        let dead = c.take_dead_letters();
        assert_eq!(dead, vec![(id, vec![42])]);
    }

    #[test]
    fn reconnect_resumes_registrations_and_remaps_inflight() {
        let mut c = connected_client();
        let (reg_id, _) = c.register("prov/dev1", 0).unwrap();
        c.on_packet(
            Packet::RegAck {
                topic_id: 42,
                msg_id: reg_id,
                code: ReturnCode::Accepted,
            },
            1,
        );
        assert_eq!(c.topic_id("prov/dev1"), Some(42));
        let (pub_id, _) = c
            .publish(TopicRef::Id(42), vec![7], QoS::AtLeastOnce, 2)
            .unwrap();

        // Connection lost; reconnect requests session continuation.
        let out = c.reconnect(10);
        match sends(&out)[0] {
            Packet::Connect { clean_session, .. } => assert!(!clean_session),
            p => panic!("unexpected {p:?}"),
        }
        assert!(!c.resume_complete());

        // CONNACK: the tracked topic is re-registered; the in-flight
        // publish waits for the fresh REGACK (its id may have changed).
        let out = c.on_packet(
            Packet::ConnAck {
                code: ReturnCode::Accepted,
            },
            11,
        );
        let resent = sends(&out);
        let new_reg_id = resent
            .iter()
            .find_map(|p| match p {
                Packet::Register {
                    msg_id, topic_name, ..
                } if topic_name == "prov/dev1" => Some(*msg_id),
                _ => None,
            })
            .expect("tracked topic re-registered");
        assert!(resent.iter().all(|p| !matches!(p, Packet::Publish { .. })));

        // The restarted broker hands out a different id: the in-flight
        // publish is remapped and retransmitted with DUP.
        let out = c.on_packet(
            Packet::RegAck {
                topic_id: 77,
                msg_id: new_reg_id,
                code: ReturnCode::Accepted,
            },
            12,
        );
        let resent = sends(&out);
        match resent
            .iter()
            .find(|p| matches!(p, Packet::Publish { .. }))
            .expect("in-flight retransmitted")
        {
            Packet::Publish {
                dup,
                topic,
                msg_id,
                payload,
                ..
            } => {
                assert!(*dup);
                assert_eq!(*topic, TopicRef::Id(77));
                assert_eq!(*msg_id, pub_id);
                assert_eq!(payload, &vec![7]);
            }
            _ => unreachable!(),
        }
        assert!(c.resume_complete());
        assert_eq!(c.topic_id("prov/dev1"), Some(77));

        // Completion still works on the resumed session.
        let out = c.on_packet(
            Packet::PubAck {
                topic_id: 77,
                msg_id: pub_id,
                code: ReturnCode::Accepted,
            },
            13,
        );
        assert_eq!(
            events(&out),
            vec![&ClientEvent::PublishDone { msg_id: pub_id }]
        );
    }

    #[test]
    fn rejected_resume_registration_dead_letters_inflight() {
        let mut c = connected_client();
        let (reg_id, _) = c.register("gone/topic", 0).unwrap();
        c.on_packet(
            Packet::RegAck {
                topic_id: 8,
                msg_id: reg_id,
                code: ReturnCode::Accepted,
            },
            1,
        );
        let (pub_id, _) = c
            .publish(TopicRef::Id(8), vec![5], QoS::AtLeastOnce, 2)
            .unwrap();
        c.reconnect(10);
        let out = c.on_packet(
            Packet::ConnAck {
                code: ReturnCode::Accepted,
            },
            11,
        );
        let new_reg_id = sends(&out)
            .iter()
            .find_map(|p| match p {
                Packet::Register { msg_id, .. } => Some(*msg_id),
                _ => None,
            })
            .unwrap();
        // The broker refuses the re-registration: resumption must still
        // complete, and the stuck in-flight publish must surface as a
        // rejection with its payload recoverable.
        let out = c.on_packet(
            Packet::RegAck {
                topic_id: 0,
                msg_id: new_reg_id,
                code: ReturnCode::NotSupported,
            },
            12,
        );
        assert!(c.resume_complete(), "rejection must not wedge resumption");
        assert!(events(&out).iter().any(
            |e| matches!(e, ClientEvent::PublishRejected { msg_id, .. } if *msg_id == pub_id)
        ));
        assert_eq!(c.inflight_len(), 0);
        assert_eq!(c.take_dead_letters(), vec![(pub_id, vec![5])]);
        assert_eq!(c.topic_id("gone/topic"), None);
    }

    #[test]
    fn reconnect_resubscribes_acknowledged_filters() {
        let mut c = connected_client();
        let (sub_id, _) = c.subscribe("prov/#", QoS::ExactlyOnce, 0).unwrap();
        c.on_packet(
            Packet::SubAck {
                qos: QoS::ExactlyOnce,
                topic_id: 0,
                msg_id: sub_id,
                code: ReturnCode::Accepted,
            },
            1,
        );
        c.reconnect(10);
        let out = c.on_packet(
            Packet::ConnAck {
                code: ReturnCode::Accepted,
            },
            11,
        );
        assert!(
            sends(&out).iter().any(|p| matches!(
                p,
                Packet::Subscribe { topic: TopicRef::Name(f), qos: QoS::ExactlyOnce, .. }
                    if f == "prov/#"
            )),
            "acknowledged filter must be re-subscribed on resumption"
        );
    }

    #[test]
    fn reconnect_retransmits_pubrel_phase_as_pubrel() {
        let mut c = connected_client();
        let (reg_id, _) = c.register("t", 0).unwrap();
        c.on_packet(
            Packet::RegAck {
                topic_id: 5,
                msg_id: reg_id,
                code: ReturnCode::Accepted,
            },
            1,
        );
        let (pub_id, _) = c
            .publish(TopicRef::Id(5), vec![1], QoS::ExactlyOnce, 2)
            .unwrap();
        // PUBREC received: the exchange is in the PUBREL phase.
        c.on_packet(Packet::PubRec { msg_id: pub_id }, 3);
        c.reconnect(10);
        let out = c.on_packet(
            Packet::ConnAck {
                code: ReturnCode::Accepted,
            },
            11,
        );
        let reg_msg_id = sends(&out)
            .iter()
            .find_map(|p| match p {
                Packet::Register { msg_id, .. } => Some(*msg_id),
                _ => None,
            })
            .unwrap();
        let out = c.on_packet(
            Packet::RegAck {
                topic_id: 5,
                msg_id: reg_msg_id,
                code: ReturnCode::Accepted,
            },
            12,
        );
        // Second half of the QoS 2 handshake resumes with PUBREL, not a
        // duplicate PUBLISH (which could double-deliver).
        assert!(sends(&out)
            .iter()
            .any(|p| matches!(p, Packet::PubRel { msg_id } if *msg_id == pub_id)));
        assert!(sends(&out)
            .iter()
            .all(|p| !matches!(p, Packet::Publish { .. })));
    }

    #[test]
    fn exhausted_retries_park_payload_in_dead_letters() {
        let mut cfg = ClientConfig::new("dev1");
        cfg.retry_timeout = Duration::from_secs(1);
        cfg.max_retries = 1;
        let mut c = Client::new(cfg);
        c.connect(0);
        c.on_packet(
            Packet::ConnAck {
                code: ReturnCode::Accepted,
            },
            0,
        );
        let (id, _) = c
            .publish(TopicRef::Id(1), vec![9, 9], QoS::AtLeastOnce, 0)
            .unwrap();
        let s = 1_000_000_000u64;
        c.on_tick(s + 1); // retry 1
        let out = c.on_tick(3 * s); // exhausted
        assert_eq!(
            events(&out),
            vec![&ClientEvent::PublishFailed { msg_id: id }]
        );
        assert_eq!(c.take_dead_letters(), vec![(id, vec![9, 9])]);
    }

    #[test]
    fn pubcomp_phase_exhaustion_never_dead_letters() {
        let mut cfg = ClientConfig::new("dev1");
        cfg.retry_timeout = Duration::from_secs(1);
        cfg.max_retries = 1;
        let mut c = Client::new(cfg);
        c.connect(0);
        c.on_packet(
            Packet::ConnAck {
                code: ReturnCode::Accepted,
            },
            0,
        );
        let (id, _) = c
            .publish(TopicRef::Id(1), vec![4], QoS::ExactlyOnce, 0)
            .unwrap();
        // PUBREC arrives: the broker provably holds (and forwarded) the
        // message; only the PUBREL/PUBCOMP leg remains.
        c.on_packet(Packet::PubRec { msg_id: id }, 1);
        let s = 1_000_000_000u64;
        c.on_tick(2 * s); // PUBREL retry
        let out = c.on_tick(4 * s); // exhausted
        assert_eq!(
            events(&out),
            vec![&ClientEvent::PublishFailed { msg_id: id }]
        );
        // Replaying this payload as a fresh publish would double-deliver.
        assert!(c.take_dead_letters().is_empty());
    }

    #[test]
    fn broker_register_is_acked() {
        let mut c = connected_client();
        let out = c.on_packet(
            Packet::Register {
                topic_id: 9,
                msg_id: 4,
                topic_name: "t".into(),
            },
            0,
        );
        assert_eq!(
            sends(&out),
            vec![&Packet::RegAck {
                topic_id: 9,
                msg_id: 4,
                code: ReturnCode::Accepted
            }]
        );
    }
}
