//! Sans-io MQTT-SN broker (the role Eclipse RSMB plays in the paper's
//! Fig. 3 architecture).
//!
//! The broker is generic over the peer address type `A` (a `SocketAddr`
//! for the real-UDP binding, a small actor id in the simulator). It keeps
//! per-client sessions, a shared topic registry, subscription state, and
//! QoS state machines in both directions:
//!
//! * **inbound QoS 2** (publisher → broker): the message is forwarded to
//!   subscribers on *first* receipt and duplicate PUBLISHes are suppressed
//!   until the PUBREL clears the message id — exactly-once semantics;
//! * **outbound QoS 1/2** (broker → subscriber): per-subscriber message-id
//!   allocation, retransmission with DUP on [`Broker::on_tick`], and the
//!   4-way handshake for QoS 2 subscribers.

use crate::client::Nanos;
use crate::packet::{
    encode_publish_into, publish_flags, Packet, PacketRef, PublishWire, QoS, ReturnCode, TopicRef,
};
use crate::topic::{filter_is_valid, topic_matches, TopicRegistry};
use crate::Error;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::time::Duration;

/// Broker configuration.
#[derive(Clone, Debug)]
pub struct BrokerConfig {
    /// Gateway id used in ADVERTISE/GWINFO.
    pub gw_id: u8,
    /// Retransmission timeout for broker→subscriber QoS traffic.
    pub retry_timeout: Duration,
    /// Maximum retransmissions before dropping an outbound message.
    pub max_retries: u32,
    /// Per-session cap on messages buffered while the subscriber is asleep
    /// or away (durable session); the oldest message is dropped — and
    /// counted in [`BrokerStats::drops`] — when the cap is exceeded.
    pub max_buffered: usize,
    /// Broker-wide backlog (buffered + unacknowledged outbound messages,
    /// summed over every session) at which the broker advertises *soft*
    /// congestion to publishers via [`Packet::CongestionAdvisory`] —
    /// publishers should pace and coalesce, nothing is rejected yet.
    pub congestion_soft: usize,
    /// Broker-wide backlog at which congestion turns *hard*: QoS ≥ 1
    /// publishes are rejected with [`ReturnCode::Congestion`] (counted in
    /// [`BrokerStats::congestion_rejects`]) instead of buffered toward the
    /// per-session drop cap. A single session reaching
    /// [`BrokerConfig::max_buffered`] also trips this level.
    pub congestion_hard: usize,
    /// Master switch for backpressure signaling (advisories and
    /// congestion rejects). `false` restores the pre-backpressure
    /// buffer-then-drop behaviour — the ablation arm of the overload
    /// experiment.
    pub signal_congestion: bool,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            gw_id: 1,
            retry_timeout: Duration::from_secs(10),
            max_retries: 5,
            max_buffered: 4096,
            // Soft well before any single session's drop cap so pacing
            // starts while drops are still avoidable; hard at 2× the
            // per-session cap means multiple subscribers are backed up.
            congestion_soft: 2048,
            congestion_hard: 8192,
            signal_congestion: true,
        }
    }
}

/// Routing statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// PUBLISH packets received from publishers.
    pub publishes_in: u64,
    /// PUBLISH packets sent to subscribers.
    pub publishes_out: u64,
    /// Duplicate QoS 2 publishes suppressed.
    pub duplicates_suppressed: u64,
    /// Retransmissions performed.
    pub retransmissions: u64,
    /// Outbound messages dropped after retry exhaustion.
    pub drops: u64,
    /// Inbound datagrams that failed to decode (malformed or truncated).
    pub decode_errors: u64,
    /// Transient socket errors a transport binding backed off on.
    pub io_errors: u64,
    /// QoS ≥ 1 publishes rejected with [`ReturnCode::Congestion`] while
    /// the backlog was past the hard watermark.
    pub congestion_rejects: u64,
    /// [`Packet::CongestionAdvisory`] packets sent to clients.
    pub advisories_sent: u64,
    /// High-water mark of the broker-wide backlog (buffered +
    /// unacknowledged outbound messages across all sessions).
    pub backlog_high_water: u64,
    /// State snapshot encode/decode round-trips that failed (see
    /// `UdpBroker::snapshot` in [`crate::net`]).
    pub snapshot_failures: u64,
    /// Publishes this shard forwarded into a cross-shard ring (sharded
    /// gateway: the publish was accepted here, but some subscribers live
    /// on other shards). Zero on an unsharded broker.
    pub cross_shard_forwards: u64,
    /// High-water occupancy observed across this shard's outbound
    /// cross-shard forwarding rings, measured after each enqueue. Zero on
    /// an unsharded broker.
    pub forward_ring_high_water: u64,
}

impl BrokerStats {
    /// Field-wise merge for sharded gateways: counters add, high-water
    /// marks take the maximum across shards (a per-shard watermark summed
    /// over shards would report a backlog no single lock ever saw).
    pub fn merge(&mut self, other: &BrokerStats) {
        self.publishes_in += other.publishes_in;
        self.publishes_out += other.publishes_out;
        self.duplicates_suppressed += other.duplicates_suppressed;
        self.retransmissions += other.retransmissions;
        self.drops += other.drops;
        self.decode_errors += other.decode_errors;
        self.io_errors += other.io_errors;
        self.congestion_rejects += other.congestion_rejects;
        self.advisories_sent += other.advisories_sent;
        self.backlog_high_water = self.backlog_high_water.max(other.backlog_high_water);
        self.snapshot_failures += other.snapshot_failures;
        self.cross_shard_forwards += other.cross_shard_forwards;
        self.forward_ring_high_water = self
            .forward_ring_high_water
            .max(other.forward_ring_high_water);
    }
}

/// Caller-owned, recycled output buffer for the zero-allocation broker
/// path: every outbound packet is encoded into one shared wire buffer and
/// addressed by byte range, so a serve loop flushes with plain `send_to`
/// calls and the steady state performs no per-packet heap traffic.
///
/// Fan-out sharing: when one PUBLISH routes to N subscribers the wire
/// image is encoded **once**; the per-subscriber copies reference the same
/// range with a 3-byte header patch (flags byte + message id) applied in
/// [`BrokerOutputs::emit`] order, so QoS-downgraded or msg-id-bearing
/// copies never re-encode the payload.
#[derive(Debug, Default)]
pub struct BrokerOutputs<A> {
    wire: Vec<u8>,
    sends: Vec<SendOp<A>>,
}

#[derive(Debug)]
struct SendOp<A> {
    to: A,
    range: std::ops::Range<usize>,
    patch: Option<PublishPatch>,
}

#[derive(Debug)]
struct PublishPatch {
    flags_at: usize,
    msg_id_at: usize,
    flags: u8,
    msg_id: u16,
}

impl<A> BrokerOutputs<A> {
    /// Creates an empty output buffer (allocates lazily on first use).
    pub fn new() -> Self {
        BrokerOutputs {
            wire: Vec::new(),
            sends: Vec::new(),
        }
    }

    /// Resets for the next batch, retaining capacity.
    pub fn clear(&mut self) {
        self.wire.clear();
        self.sends.clear();
    }

    /// Number of datagrams produced.
    pub fn len(&self) -> usize {
        self.sends.len()
    }

    /// Whether no datagrams were produced.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
    }

    /// Applies pending header patches and yields `(destination, datagram)`
    /// in production order. Safe to call repeatedly; patches are
    /// idempotent and applied immediately before each datagram is yielded,
    /// which is what makes sharing one wire image across subscribers with
    /// distinct message ids correct.
    pub fn emit(&mut self, mut f: impl FnMut(&A, &[u8])) {
        // lint: zero-alloc-begin
        for op in &self.sends {
            if let Some(p) = &op.patch {
                self.wire[p.flags_at] = p.flags;
                self.wire[p.msg_id_at..p.msg_id_at + 2].copy_from_slice(&p.msg_id.to_be_bytes());
            }
            f(&op.to, &self.wire[op.range.start..op.range.end]);
        }
        // lint: zero-alloc-end
    }

    /// Decodes every produced datagram back into an owned packet — a
    /// test and simulator convenience, not a hot path.
    pub fn packets(&mut self) -> Vec<(A, Packet)>
    where
        A: Clone,
    {
        let mut out = Vec::with_capacity(self.sends.len());
        self.emit(|to, bytes| {
            out.push((
                to.clone(),
                // lint:allow(no-panic): decoding datagrams this broker just encoded; harness-only collection path
                Packet::decode(bytes).expect("broker-encoded datagram decodes"),
            ));
        });
        out
    }
}

/// Where packet dispatch writes its outbound traffic: an owned
/// `Vec<(A, Packet)>` for the legacy per-packet API and the simulators, or
/// encoded wire ranges (with single-encode fan-out) for the gateway path.
trait OutputSink<A> {
    fn push(&mut self, to: A, packet: Packet);
    fn push_publish(
        &mut self,
        to: A,
        dup: bool,
        qos: QoS,
        topic_id: u16,
        msg_id: u16,
        payload: &[u8],
    );
}

struct VecSink<'o, A>(&'o mut Vec<(A, Packet)>);

impl<A> OutputSink<A> for VecSink<'_, A> {
    fn push(&mut self, to: A, packet: Packet) {
        self.0.push((to, packet));
    }

    fn push_publish(
        &mut self,
        to: A,
        dup: bool,
        qos: QoS,
        topic_id: u16,
        msg_id: u16,
        payload: &[u8],
    ) {
        self.0.push((
            to,
            Packet::Publish {
                dup,
                qos,
                retain: false,
                topic: TopicRef::Id(topic_id),
                msg_id,
                payload: payload.to_vec(),
            },
        ));
    }
}

struct WireSink<'o, A> {
    out: &'o mut BrokerOutputs<A>,
    /// Identity of the last publish wire image, for fan-out reuse. The
    /// pointer is compared, never dereferenced; it stays meaningful
    /// because a sink lives within a single dispatch call, during which
    /// the payload slice is pinned.
    cached: Option<CachedPublish>,
}

struct CachedPublish {
    payload_ptr: *const u8,
    payload_len: usize,
    topic_id: u16,
    dup: bool,
    wire: PublishWire,
}

impl<'o, A> WireSink<'o, A> {
    fn new(out: &'o mut BrokerOutputs<A>) -> Self {
        WireSink { out, cached: None }
    }
}

impl<A> OutputSink<A> for WireSink<'_, A> {
    fn push(&mut self, to: A, packet: Packet) {
        let start = self.out.wire.len();
        packet.encode_into(&mut self.out.wire);
        self.out.sends.push(SendOp {
            to,
            range: start..self.out.wire.len(),
            patch: None,
        });
    }

    fn push_publish(
        &mut self,
        to: A,
        dup: bool,
        qos: QoS,
        topic_id: u16,
        msg_id: u16,
        payload: &[u8],
    ) {
        // lint: zero-alloc-begin
        let topic = TopicRef::Id(topic_id);
        if let Some(c) = &self.cached {
            if c.payload_ptr == payload.as_ptr()
                && c.payload_len == payload.len()
                && c.topic_id == topic_id
                && c.dup == dup
            {
                self.out.sends.push(SendOp {
                    to,
                    range: c.wire.start..c.wire.end,
                    patch: Some(PublishPatch {
                        flags_at: c.wire.flags_at,
                        msg_id_at: c.wire.msg_id_at,
                        flags: publish_flags(dup, qos, false, &topic),
                        msg_id,
                    }),
                });
                return;
            }
        }
        let wire =
            encode_publish_into(dup, qos, false, &topic, msg_id, payload, &mut self.out.wire);
        // The first copy also records its header values as a patch: later
        // copies patch the shared bytes in place, so every send must
        // restore its own header for `emit` to stay repeatable.
        self.out.sends.push(SendOp {
            to,
            range: wire.start..wire.end,
            patch: Some(PublishPatch {
                flags_at: wire.flags_at,
                msg_id_at: wire.msg_id_at,
                flags: publish_flags(dup, qos, false, &topic),
                msg_id,
            }),
        });
        self.cached = Some(CachedPublish {
            payload_ptr: payload.as_ptr(),
            payload_len: payload.len(),
            topic_id,
            dup,
            wire,
        });
        // lint: zero-alloc-end
    }
}

/// Which acknowledgement an in-flight outbound message is waiting for.
#[derive(Clone, Debug)]
enum OutPhase {
    Puback,
    Pubrec,
    Pubcomp,
}

#[derive(Clone, Debug)]
struct Outbound {
    topic_id: u16,
    payload: Vec<u8>,
    qos: QoS,
    phase: OutPhase,
    last_sent: Nanos,
    retries: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SessionState {
    Active,
    /// DISCONNECT with a duration: the device sleeps; publishes are
    /// buffered and flushed on its next PINGREQ (spec §6.14 — the
    /// feature that lets battery-powered devices duty-cycle their radio).
    Asleep,
    Disconnected,
}

#[derive(Clone, Debug)]
struct Session {
    client_id: String,
    state: SessionState,
    /// Connected with `clean_session = false`: the session (subscriptions,
    /// QoS state, buffered messages) survives disconnection and is resumed
    /// on the next CONNECT with this client id — even from a different
    /// transport address.
    durable: bool,
    /// Messages buffered while asleep or away: (topic id, payload, qos).
    /// A deque so cap-overflow eviction of the oldest message is O(1).
    buffered: VecDeque<(u16, Vec<u8>, QoS)>,
    subscriptions: Vec<(String, QoS)>,
    next_msg_id: u16,
    outbound: HashMap<u16, Outbound>,
    /// Publisher-side QoS 2 ids already forwarded, awaiting PUBREL.
    inbound_qos2: HashMap<u16, ()>,
    /// Recently *completed* inbound QoS 2 ids (PUBREL processed), newest
    /// last. Clearing dedup state at PUBREL alone is not enough on a
    /// datagram transport: a delayed copy of the PUBLISH can arrive after
    /// the handshake completes and would be re-forwarded as a new message.
    /// Publishers allocate ids sequentially (wrapping at 65536), so a
    /// legitimate reuse of an id is tens of thousands of handshakes away —
    /// far beyond this window — while late duplicates land within a few.
    completed_qos2: VecDeque<u16>,
    last_seen: Nanos,
    /// Last congestion level advertised to this client, so advisories are
    /// only sent on level changes. Transient (not persisted in
    /// snapshots): a restarted broker simply re-advises on the next
    /// publish.
    advised_level: u8,
}

impl Session {
    fn new(client_id: String, now: Nanos) -> Self {
        Session {
            client_id,
            state: SessionState::Active,
            durable: false,
            buffered: VecDeque::new(),
            subscriptions: Vec::new(),
            next_msg_id: 1,
            outbound: HashMap::new(),
            inbound_qos2: HashMap::new(),
            completed_qos2: VecDeque::new(),
            last_seen: now,
            advised_level: 0,
        }
    }

    /// Moves a completed inbound QoS 2 id into the bounded
    /// recently-completed window (evicting the oldest at capacity).
    fn complete_inbound_qos2(&mut self, msg_id: u16) {
        if self.inbound_qos2.remove(&msg_id).is_some() {
            if self.completed_qos2.len() >= COMPLETED_QOS2_WINDOW {
                self.completed_qos2.pop_front();
            }
            self.completed_qos2.push_back(msg_id);
        }
    }

    /// A PUBLISH with this id is a duplicate: either mid-handshake
    /// (awaiting PUBREL) or a late copy of a completed handshake.
    fn inbound_qos2_dup(&self, msg_id: u16) -> bool {
        self.inbound_qos2.contains_key(&msg_id) || self.completed_qos2.contains(&msg_id)
    }

    fn alloc_msg_id(&mut self) -> u16 {
        loop {
            let id = self.next_msg_id;
            self.next_msg_id = self.next_msg_id.wrapping_add(1);
            if self.next_msg_id == 0 {
                self.next_msg_id = 1;
            }
            if id != 0 && !self.outbound.contains_key(&id) {
                return id;
            }
        }
    }
}

/// The broker state machine.
///
/// `Clone` snapshots the complete session/registry state — the basis of
/// restart persistence: a crashed gateway can be respawned from a snapshot
/// (see `UdpBroker::spawn_resuming` in [`crate::net`]) without losing
/// durable sessions or topic registrations.
#[derive(Clone, Debug)]
pub struct Broker<A: Clone + Eq + Hash> {
    config: BrokerConfig,
    registry: TopicRegistry,
    sessions: HashMap<A, Session>,
    /// Insertion order of sessions, for deterministic fan-out.
    order: Vec<A>,
    stats: BrokerStats,
    /// Bumped whenever sessions or subscriptions mutate; validates
    /// `routes` entries.
    route_epoch: u64,
    /// Per-topic fan-out cache. Routing a PUBLISH in steady state is then
    /// one hash lookup instead of a scan over every session's
    /// subscription list.
    routes: HashMap<u16, CachedRoute<A>>,
    /// Recycled payload buffers for outbound QoS state and away-session
    /// buffering, so steady-state QoS 1/2 forwarding stores its required
    /// retransmission copy without allocating.
    payload_pool: Vec<Vec<u8>>,
    /// Whether the most recent datagram handed to
    /// [`Broker::on_datagram_routed`] carried a PUBLISH that was accepted
    /// for fan-out (first receipt, valid topic, not congestion-rejected).
    /// Transient — never persisted.
    last_publish_forwarded: bool,
}

/// One cached fan-out route: the [`Broker::route_epoch`] it was computed
/// at, plus the matching targets as (address, subscription QoS, away).
type CachedRoute<A> = (u64, Vec<(A, QoS, bool)>);

/// Upper bound on payload buffers retained for reuse.
const MAX_POOLED_PAYLOADS: usize = 64;

impl<A: Clone + Eq + Hash> Broker<A> {
    /// Creates an empty broker.
    pub fn new(config: BrokerConfig) -> Self {
        Broker {
            config,
            registry: TopicRegistry::new(),
            sessions: HashMap::new(),
            order: Vec::new(),
            stats: BrokerStats::default(),
            route_epoch: 0,
            routes: HashMap::new(),
            payload_pool: Vec::new(),
            last_publish_forwarded: false,
        }
    }

    /// Invalidates every cached fan-out route; called on any mutation
    /// that can change routing (session create/remove/migrate/state,
    /// subscription change).
    fn invalidate_routes(&mut self) {
        self.route_epoch = self.route_epoch.wrapping_add(1);
    }

    /// Routing statistics.
    pub fn stats(&self) -> &BrokerStats {
        &self.stats
    }

    /// Folds transient socket-error counts observed by a transport
    /// binding into the stats surface (see [`BrokerStats::io_errors`]).
    pub fn note_io_errors(&mut self, n: u64) {
        self.stats.io_errors += n;
    }

    /// Records a failed state snapshot (see
    /// [`BrokerStats::snapshot_failures`]); called by transport bindings
    /// whose encode/decode round-trip did not survive.
    pub fn note_snapshot_failure(&mut self) {
        self.stats.snapshot_failures += 1;
    }

    /// Records one publish forwarded into a cross-shard ring whose
    /// post-enqueue occupancy was `ring_depth` (see
    /// [`BrokerStats::cross_shard_forwards`] /
    /// [`BrokerStats::forward_ring_high_water`]). Called by the sharded
    /// transport while it still holds this shard's lock.
    pub fn note_cross_shard_forward(&mut self, ring_depth: u64) {
        self.stats.cross_shard_forwards += 1;
        self.stats.forward_ring_high_water = self.stats.forward_ring_high_water.max(ring_depth);
    }

    /// Folds drops that happened outside the state machine (a full
    /// inbound or forwarding ring in the sharded transport) into this
    /// shard's [`BrokerStats::drops`], keeping the no-silent-loss
    /// accounting exact.
    pub fn note_ring_drops(&mut self, n: u64) {
        self.stats.drops += n;
    }

    /// Broker-wide backlog and the most-backed-up single session, both as
    /// buffered + unacknowledged outbound message counts. O(sessions) —
    /// no allocation, and session counts are tiny next to per-publish
    /// encode work.
    fn backlog_scan(&self) -> (usize, usize) {
        let mut total = 0;
        let mut worst = 0;
        for s in self.sessions.values() {
            let n = s.buffered.len() + s.outbound.len();
            total += n;
            worst = worst.max(n);
        }
        (total, worst)
    }

    /// Current broker-wide backlog: messages buffered for away/sleeping
    /// sessions plus unacknowledged outbound QoS traffic. A slow
    /// subscriber — e.g. a translator that stopped draining — shows up
    /// here, which is how server-side lag propagates back to the gateway's
    /// congestion signal.
    pub fn backlog(&self) -> usize {
        self.backlog_scan().0
    }

    fn level_from(&self, total: usize, worst_session: usize) -> u8 {
        let session_soft = (self.config.max_buffered / 4).max(1) * 3;
        if total >= self.config.congestion_hard || worst_session >= self.config.max_buffered {
            2
        } else if total >= self.config.congestion_soft || worst_session >= session_soft {
            1
        } else {
            0
        }
    }

    /// Current congestion level: 0 = clear, 1 = soft (publishers are
    /// advised to pace), 2 = hard (QoS ≥ 1 publishes are rejected when
    /// [`BrokerConfig::signal_congestion`] is on).
    pub fn congestion_level(&self) -> u8 {
        let (total, worst) = self.backlog_scan();
        self.level_from(total, worst)
    }

    fn pooled_copy(pool: &mut Vec<Vec<u8>>, payload: &[u8]) -> Vec<u8> {
        let mut buf = pool.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(payload);
        buf
    }

    fn reclaim_payload(pool: &mut Vec<Vec<u8>>, payload: Vec<u8>) {
        if pool.len() < MAX_POOLED_PAYLOADS {
            pool.push(payload);
        }
    }

    /// Access to the topic registry (e.g. to seed predefined topics).
    /// Conservatively invalidates the fan-out route cache: remapping a
    /// topic id changes which subscriptions a publish to it matches.
    pub fn registry_mut(&mut self) -> &mut TopicRegistry {
        self.invalidate_routes();
        &mut self.registry
    }

    /// Number of active (awake) sessions.
    pub fn session_count(&self) -> usize {
        self.sessions
            .values()
            .filter(|s| s.state == SessionState::Active)
            .count()
    }

    /// Number of sleeping sessions.
    pub fn sleeping_count(&self) -> usize {
        self.sessions
            .values()
            .filter(|s| s.state == SessionState::Asleep)
            .count()
    }

    /// Handles one decoded packet from `from`, returning packets to send.
    ///
    /// The allocating per-packet API: a fresh output `Vec` with owned
    /// packets (PUBLISH payloads cloned per subscriber). The simulators
    /// and tests use it; transports on the hot path should prefer
    /// [`Broker::on_datagram_into`] / [`Broker::on_packet_into`], which
    /// run the same state machine through recycled buffers.
    pub fn on_packet(&mut self, now: Nanos, from: A, packet: Packet) -> Vec<(A, Packet)> {
        let mut out = Vec::new();
        self.dispatch(now, from, packet, &mut VecSink(&mut out));
        out
    }

    /// Handles one decoded packet, encoding every output datagram into the
    /// caller-owned (and recycled) `out` buffer: no output `Vec`, no
    /// per-subscriber payload clone, single-encode fan-out.
    pub fn on_packet_into(
        &mut self,
        now: Nanos,
        from: A,
        packet: Packet,
        out: &mut BrokerOutputs<A>,
    ) {
        self.dispatch(now, from, packet, &mut WireSink::new(out));
    }

    /// Handles one raw datagram end to end: borrowed decode (PUBLISH
    /// payloads are never copied into an owned `Vec`), state-machine
    /// dispatch, and wire encoding into `out`. Decode failures are
    /// counted in [`BrokerStats::decode_errors`] and returned.
    pub fn on_datagram_into(
        &mut self,
        now: Nanos,
        from: A,
        datagram: &[u8],
        out: &mut BrokerOutputs<A>,
    ) -> Result<(), Error> {
        // lint: zero-alloc-begin
        let mut sink = WireSink::new(out);
        match Packet::decode_borrowed(datagram) {
            Ok(PacketRef::Publish {
                qos,
                topic,
                msg_id,
                payload,
                ..
            }) => {
                if let Some(s) = self.sessions.get_mut(&from) {
                    s.last_seen = now;
                }
                self.handle_publish(now, from, qos, topic, msg_id, payload, &mut sink);
                Ok(())
            }
            Ok(PacketRef::Owned(p)) => {
                self.dispatch(now, from, p, &mut sink);
                Ok(())
            }
            Err(e) => {
                self.stats.decode_errors += 1;
                Err(e)
            }
        }
        // lint: zero-alloc-end
    }

    /// [`Broker::on_datagram_into`] plus a routing verdict for sharded
    /// transports: `Ok(true)` when the datagram carried a PUBLISH that
    /// this broker accepted for fan-out (first receipt, valid topic id,
    /// not congestion-rejected) — exactly the cases a sharded front must
    /// also forward to the other shards' subscribers. QoS 2 duplicates
    /// and rejected publishes return `Ok(false)`, so a message can never
    /// cross the shard boundary twice.
    pub fn on_datagram_routed(
        &mut self,
        now: Nanos,
        from: A,
        datagram: &[u8],
        out: &mut BrokerOutputs<A>,
    ) -> Result<bool, Error> {
        // lint: zero-alloc-begin
        self.last_publish_forwarded = false;
        self.on_datagram_into(now, from, datagram, out)?;
        Ok(self.last_publish_forwarded)
        // lint: zero-alloc-end
    }

    /// Delivers a publish owned by another shard to this shard's matching
    /// subscribers: same fan-out, buffering, and QoS machinery as a local
    /// publish, minus the publisher-side accounting and acknowledgments
    /// (the owning shard already counted `publishes_in` and ran the
    /// QoS 1/2 handshake). `qos` is the publish QoS; each delivery is
    /// capped at the subscriber's granted QoS as usual.
    pub fn deliver_forwarded(
        &mut self,
        now: Nanos,
        topic_id: u16,
        qos: QoS,
        payload: &[u8],
        out: &mut BrokerOutputs<A>,
    ) {
        // lint: zero-alloc-begin
        if self.registry.name_of(topic_id).is_none() {
            // The sending shard resolved the id against the shared
            // registry; an unknown id here means the local mirror is
            // behind, and delivering to no one is the only safe option.
            return;
        }
        let (total, _) = self.backlog_scan();
        self.stats.backlog_high_water = self.stats.backlog_high_water.max(total as u64);
        let mut sink = WireSink::new(out);
        self.fan_out(now, topic_id, qos, payload, &mut sink);
        // lint: zero-alloc-end
    }

    /// Mirrors a topic assignment made by an authoritative shared
    /// registry (sharded gateway) into this broker's local registry; see
    /// [`TopicRegistry::mirror`]. Invalidates the route cache on success
    /// — a new id can change which subscriptions a publish matches.
    pub fn mirror_topic(&mut self, id: u16, name: &str) -> bool {
        if self.registry.mirror(id, name) {
            self.invalidate_routes();
            true
        } else {
            false
        }
    }

    /// Whether `id` resolves in this broker's local topic registry.
    pub fn topic_known(&self, id: u16) -> bool {
        self.registry.name_of(id).is_some()
    }

    /// Collects the subscription filters of every fan-out-eligible
    /// session (deduplicated) into `into`, clearing it first. The sharded
    /// router uses this per-shard union to decide which shards a publish
    /// must be forwarded to.
    pub fn collect_subscription_filters(&self, into: &mut Vec<String>) {
        into.clear();
        for s in self.sessions.values() {
            if s.state == SessionState::Disconnected && !s.durable {
                continue;
            }
            for (filter, _) in &s.subscriptions {
                if !into.iter().any(|f| f == filter) {
                    into.push(filter.clone());
                }
            }
        }
    }

    /// Batch variant of [`Broker::on_datagram_into`]: processes every
    /// frame under one `&mut self` (one lock acquisition in a threaded
    /// transport), returning the number of frames that failed to decode.
    pub fn on_datagram_batch_into<'d>(
        &mut self,
        now: Nanos,
        frames: impl IntoIterator<Item = (A, &'d [u8])>,
        out: &mut BrokerOutputs<A>,
    ) -> usize {
        // lint: zero-alloc-begin
        let mut decode_errors = 0;
        for (from, datagram) in frames {
            if self.on_datagram_into(now, from, datagram, out).is_err() {
                decode_errors += 1;
            }
        }
        decode_errors
        // lint: zero-alloc-end
    }

    fn dispatch<S: OutputSink<A>>(&mut self, now: Nanos, from: A, packet: Packet, sink: &mut S) {
        if let Some(s) = self.sessions.get_mut(&from) {
            s.last_seen = now;
        }
        match packet {
            Packet::SearchGw { .. } => sink.push(
                from,
                Packet::GwInfo {
                    gw_id: self.config.gw_id,
                },
            ),
            Packet::Connect {
                clean_session,
                client_id,
                ..
            } => self.handle_connect(now, from, clean_session, client_id, sink),
            Packet::Register {
                msg_id, topic_name, ..
            } => {
                let (topic_id, code) = match self.registry.register(&topic_name) {
                    Some(id) => (id, ReturnCode::Accepted),
                    None => (0, ReturnCode::NotSupported),
                };
                sink.push(
                    from,
                    Packet::RegAck {
                        topic_id,
                        msg_id,
                        code,
                    },
                );
            }
            Packet::Subscribe {
                qos, msg_id, topic, ..
            } => self.handle_subscribe(from, qos, msg_id, topic, sink),
            Packet::Unsubscribe { msg_id, topic } => {
                self.invalidate_routes();
                if let Some(session) = self.sessions.get_mut(&from) {
                    let name = match &topic {
                        TopicRef::Name(n) => Some(n.as_str()),
                        TopicRef::Id(id) | TopicRef::Predefined(id) => self.registry.name_of(*id),
                    };
                    if let Some(name) = name {
                        session.subscriptions.retain(|(f, _)| f != name);
                    }
                }
                sink.push(from, Packet::UnsubAck { msg_id });
            }
            Packet::Publish {
                dup: _,
                qos,
                topic,
                msg_id,
                payload,
                ..
            } => self.handle_publish(now, from, qos, topic, msg_id, &payload, sink),
            Packet::PubRel { msg_id } => {
                if let Some(s) = self.sessions.get_mut(&from) {
                    s.complete_inbound_qos2(msg_id);
                }
                sink.push(from, Packet::PubComp { msg_id });
            }
            Packet::PubAck { msg_id, .. } => {
                if let Some(s) = self.sessions.get_mut(&from) {
                    if matches!(
                        s.outbound.get(&msg_id).map(|o| &o.phase),
                        Some(OutPhase::Puback)
                    ) {
                        if let Some(o) = s.outbound.remove(&msg_id) {
                            Self::reclaim_payload(&mut self.payload_pool, o.payload);
                        }
                    }
                }
            }
            Packet::PubRec { msg_id } => {
                if let Some(s) = self.sessions.get_mut(&from) {
                    if let Some(o) = s.outbound.get_mut(&msg_id) {
                        o.phase = OutPhase::Pubcomp;
                        o.last_sent = now;
                        o.retries = 0;
                    }
                }
                sink.push(from, Packet::PubRel { msg_id });
            }
            Packet::PubComp { msg_id } => {
                if let Some(s) = self.sessions.get_mut(&from) {
                    if let Some(o) = s.outbound.remove(&msg_id) {
                        Self::reclaim_payload(&mut self.payload_pool, o.payload);
                    }
                }
            }
            Packet::PingReq => {
                // A sleeping client's PINGREQ triggers delivery of
                // everything buffered while it slept, then the PINGRESP.
                if matches!(
                    self.sessions.get(&from).map(|s| s.state),
                    Some(SessionState::Asleep)
                ) {
                    self.deliver_buffered(now, from.clone(), sink);
                }
                sink.push(from, Packet::PingResp);
            }
            Packet::Disconnect { duration } => {
                self.invalidate_routes();
                if let Some(s) = self.sessions.get_mut(&from) {
                    s.state = if duration.is_some() {
                        SessionState::Asleep
                    } else {
                        SessionState::Disconnected
                    };
                }
                sink.push(from, Packet::Disconnect { duration: None });
            }
            _ => {}
        }
    }

    /// CONNECT: create, reactivate, or migrate a session.
    ///
    /// `clean_session = false` asks for session continuation: if a session
    /// with this client id exists anywhere — including at a *different*
    /// transport address, the normal case for an edge device that rebound
    /// its socket after a network outage — it is moved to the new address
    /// with subscriptions, QoS handshake state, and buffered messages
    /// intact, and everything buffered while the client was away is
    /// delivered right after the CONNACK.
    fn handle_connect<S: OutputSink<A>>(
        &mut self,
        now: Nanos,
        from: A,
        clean_session: bool,
        client_id: String,
        sink: &mut S,
    ) {
        self.invalidate_routes();
        let connack = Packet::ConnAck {
            code: ReturnCode::Accepted,
        };
        if clean_session {
            // Clean start; drop any stale session this client id left at a
            // previous address so it cannot keep receiving fan-out.
            let stale: Vec<A> = self
                .sessions
                .iter()
                .filter(|(a, s)| **a != from && !client_id.is_empty() && s.client_id == client_id)
                .map(|(a, _)| a.clone())
                .collect();
            for a in stale {
                self.sessions.remove(&a);
                self.order.retain(|x| *x != a);
            }
            if !self.sessions.contains_key(&from) {
                self.order.push(from.clone());
            }
            self.sessions
                .insert(from.clone(), Session::new(client_id, now));
            sink.push(from, connack);
            return;
        }

        let prior = self
            .sessions
            .iter()
            .find(|(_, s)| !client_id.is_empty() && s.client_id == client_id)
            .map(|(a, _)| a.clone());
        match prior {
            // The `prior` address was found in the map above; both lookups
            // degrade to the fresh-session arm if it has since vanished.
            Some(old_addr) if old_addr != from => {
                if let Some(mut session) = self.sessions.remove(&old_addr) {
                    session.state = SessionState::Active;
                    session.durable = true;
                    session.last_seen = now;
                    // New connection epoch: the completed-QoS2 window only
                    // guards against datagrams delayed within one epoch. A
                    // client restarted from scratch reuses msg_ids for new
                    // publishes, so the window must not outlive the epoch.
                    // (`inbound_qos2` — handshakes still open — is kept so
                    // DUP retransmissions of resumed exchanges still dedup.)
                    session.completed_qos2.clear();
                    // Unacked outbound messages retransmit promptly — with
                    // a fresh retry budget — toward the new address.
                    for o in session.outbound.values_mut() {
                        o.last_sent = 0;
                        o.retries = 0;
                    }
                    // The migrated session keeps its fan-out position; any
                    // stale session already at the new address is dropped.
                    self.sessions.remove(&from);
                    self.order.retain(|a| *a != from);
                    if let Some(pos) = self.order.iter().position(|a| *a == old_addr) {
                        self.order[pos] = from.clone();
                    } else {
                        self.order.push(from.clone());
                    }
                    self.sessions.insert(from.clone(), session);
                } else {
                    if !self.sessions.contains_key(&from) {
                        self.order.push(from.clone());
                    }
                    let mut session = Session::new(client_id, now);
                    session.durable = true;
                    self.sessions.insert(from.clone(), session);
                }
            }
            Some(_) => {
                if let Some(session) = self.sessions.get_mut(&from) {
                    session.state = SessionState::Active;
                    session.durable = true;
                    session.last_seen = now;
                    // Same epoch reset as the migration arm above.
                    session.completed_qos2.clear();
                }
            }
            None => {
                if !self.sessions.contains_key(&from) {
                    self.order.push(from.clone());
                }
                let mut session = Session::new(client_id, now);
                session.durable = true;
                self.sessions.insert(from.clone(), session);
            }
        }
        sink.push(from.clone(), connack);
        self.deliver_buffered(now, from, sink);
    }

    /// Delivers everything buffered for `to` while it was asleep or away,
    /// arming outbound QoS 1/2 state for each message.
    fn deliver_buffered<S: OutputSink<A>>(&mut self, now: Nanos, to: A, sink: &mut S) {
        let buffered = match self.sessions.get_mut(&to) {
            Some(s) => std::mem::take(&mut s.buffered),
            None => return,
        };
        for (topic_id, payload, qos) in buffered {
            let Some(session) = self.sessions.get_mut(&to) else {
                break;
            };
            let msg_id = if qos == QoS::AtMostOnce {
                0
            } else {
                session.alloc_msg_id()
            };
            sink.push_publish(to.clone(), false, qos, topic_id, msg_id, &payload);
            if qos != QoS::AtMostOnce {
                session.outbound.insert(
                    msg_id,
                    Outbound {
                        topic_id,
                        payload,
                        qos,
                        phase: if qos == QoS::AtLeastOnce {
                            OutPhase::Puback
                        } else {
                            OutPhase::Pubrec
                        },
                        last_sent: now,
                        retries: 0,
                    },
                );
            } else {
                Self::reclaim_payload(&mut self.payload_pool, payload);
            }
            self.stats.publishes_out += 1;
        }
    }

    /// Rebases per-session timestamps to zero. Used when a persisted
    /// snapshot is resumed by a broker whose monotonic clock restarted —
    /// otherwise retransmission timers would stall until the new clock
    /// catches up with the old one.
    pub fn reset_clock(&mut self) {
        for s in self.sessions.values_mut() {
            s.last_seen = 0;
            for o in s.outbound.values_mut() {
                o.last_sent = 0;
            }
        }
    }

    fn handle_subscribe<S: OutputSink<A>>(
        &mut self,
        from: A,
        qos: QoS,
        msg_id: u16,
        topic: TopicRef,
        sink: &mut S,
    ) {
        self.invalidate_routes();
        let Some(session) = self.sessions.get_mut(&from) else {
            sink.push(
                from,
                Packet::SubAck {
                    qos,
                    topic_id: 0,
                    msg_id,
                    code: ReturnCode::NotSupported,
                },
            );
            return;
        };
        let (filter, topic_id, code) = match &topic {
            TopicRef::Name(name) => {
                if !filter_is_valid(name) {
                    (None, 0, ReturnCode::NotSupported)
                } else if name.contains('+') || name.contains('#') {
                    (Some(name.clone()), 0, ReturnCode::Accepted)
                } else {
                    // Concrete names get a topic id assigned in the SUBACK.
                    match self.registry.register(name) {
                        Some(id) => (Some(name.clone()), id, ReturnCode::Accepted),
                        None => (None, 0, ReturnCode::NotSupported),
                    }
                }
            }
            TopicRef::Id(id) | TopicRef::Predefined(id) => match self.registry.name_of(*id) {
                Some(name) => (Some(name.to_owned()), *id, ReturnCode::Accepted),
                None => (None, 0, ReturnCode::InvalidTopicId),
            },
        };
        if let Some(filter) = filter {
            session.subscriptions.retain(|(f, _)| f != &filter);
            session.subscriptions.push((filter, qos));
        }
        sink.push(
            from,
            Packet::SubAck {
                qos,
                topic_id,
                msg_id,
                code,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_publish<S: OutputSink<A>>(
        &mut self,
        now: Nanos,
        from: A,
        qos: QoS,
        topic: TopicRef,
        msg_id: u16,
        payload: &[u8],
        sink: &mut S,
    ) {
        self.stats.publishes_in += 1;

        let topic_id = match topic {
            TopicRef::Id(id) | TopicRef::Predefined(id) => id,
            TopicRef::Name(_) => {
                sink.push(
                    from,
                    Packet::PubAck {
                        topic_id: 0,
                        msg_id,
                        code: ReturnCode::NotSupported,
                    },
                );
                return;
            }
        };
        if self.registry.name_of(topic_id).is_none() {
            sink.push(
                from,
                Packet::PubAck {
                    topic_id,
                    msg_id,
                    code: ReturnCode::InvalidTopicId,
                },
            );
            return;
        }

        // End-to-end backpressure. Rising congestion is advertised to the
        // publisher the moment its level changes, and past the hard
        // watermark QoS ≥ 1 publishes are rejected with `Congestion` —
        // the publisher re-buffers and paces instead of feeding buffers
        // that are already shedding. QoS 0 is never rejected (there is no
        // ack to carry the code); it keeps flowing toward the per-session
        // drop cap.
        let (total, worst) = self.backlog_scan();
        self.stats.backlog_high_water = self.stats.backlog_high_water.max(total as u64);
        if self.config.signal_congestion {
            let level = self.level_from(total, worst);
            let advised = self
                .sessions
                .get(&from)
                .map(|s| s.advised_level)
                .unwrap_or(0);
            if advised != level {
                if let Some(s) = self.sessions.get_mut(&from) {
                    s.advised_level = level;
                    self.stats.advisories_sent += 1;
                    sink.push(from.clone(), Packet::CongestionAdvisory { level });
                }
            }
            if level >= 2 && qos != QoS::AtMostOnce {
                // A QoS 2 retransmission of a message already forwarded
                // must complete its handshake normally — rejecting it
                // would make the publisher replay a delivered message.
                let qos2_dup = qos == QoS::ExactlyOnce
                    && self
                        .sessions
                        .get(&from)
                        .is_some_and(|s| s.inbound_qos2_dup(msg_id));
                if !qos2_dup {
                    self.stats.congestion_rejects += 1;
                    sink.push(
                        from,
                        Packet::PubAck {
                            topic_id,
                            msg_id,
                            code: ReturnCode::Congestion,
                        },
                    );
                    return;
                }
            }
        }

        // QoS-level acknowledgments toward the publisher, with QoS 2
        // exactly-once forwarding.
        let mut forward = true;
        match qos {
            QoS::AtMostOnce => {}
            QoS::AtLeastOnce => {
                sink.push(
                    from.clone(),
                    Packet::PubAck {
                        topic_id,
                        msg_id,
                        code: ReturnCode::Accepted,
                    },
                );
            }
            QoS::ExactlyOnce => {
                let session = self
                    .sessions
                    .entry(from.clone())
                    .or_insert_with(|| Session::new(String::new(), now));
                if session.inbound_qos2_dup(msg_id) {
                    forward = false;
                    self.stats.duplicates_suppressed += 1;
                } else {
                    session.inbound_qos2.insert(msg_id, ());
                }
                sink.push(from.clone(), Packet::PubRec { msg_id });
            }
        }
        if !forward {
            return;
        }

        self.last_publish_forwarded = true;
        self.fan_out(now, topic_id, qos, payload, sink);
    }

    /// Fans one accepted publish out to every matching local subscriber in
    /// deterministic session order. Sleeping subscribers and away durable
    /// subscribers (disconnected, `clean_session = false`) get their
    /// messages buffered for delivery on the next PINGREQ / reconnect.
    ///
    /// Targets come from the per-topic route cache when its epoch is
    /// current — one hash lookup instead of matching every session's
    /// subscription list — and are rebuilt into the entry's recycled
    /// vector otherwise. The topic name stays borrowed from the
    /// registry (no per-publish `String`).
    ///
    /// Shared by [`Broker::handle_publish`] (local publisher) and
    /// [`Broker::deliver_forwarded`] (publish owned by another shard).
    fn fan_out<S: OutputSink<A>>(
        &mut self,
        now: Nanos,
        topic_id: u16,
        qos: QoS,
        payload: &[u8],
        sink: &mut S,
    ) {
        let epoch = self.route_epoch;
        let (cached_epoch, targets) = self
            .routes
            .entry(topic_id)
            .or_insert_with(|| (epoch.wrapping_sub(1), Vec::new()));
        if *cached_epoch != epoch {
            targets.clear();
            let Some(topic_name) = self.registry.name_of(topic_id) else {
                // Validated at entry; an empty rebuild delivers to no one,
                // which is exactly what an unregistered topic gets.
                return;
            };
            for addr in &self.order {
                let Some(s) = self.sessions.get(addr) else {
                    continue;
                };
                if s.state == SessionState::Disconnected && !s.durable {
                    continue;
                }
                let Some(best) = s
                    .subscriptions
                    .iter()
                    .filter(|(f, _)| topic_matches(f, topic_name))
                    .map(|(_, q)| *q)
                    .max()
                else {
                    continue;
                };
                targets.push((addr.clone(), best, s.state != SessionState::Active));
            }
            *cached_epoch = epoch;
        }

        for (addr, best, away) in targets.iter() {
            let (sub_qos, away) = ((*best).min(qos), *away);
            // The common steady-state target — active subscriber,
            // effective QoS 0 — needs no session state at all: no msg id,
            // no retransmission copy, just the shared wire image.
            if !away && sub_qos == QoS::AtMostOnce {
                sink.push_publish(addr.clone(), false, sub_qos, topic_id, 0, payload);
                self.stats.publishes_out += 1;
                continue;
            }
            let Some(session) = self.sessions.get_mut(addr) else {
                continue;
            };
            if away {
                if session.buffered.len() >= self.config.max_buffered {
                    if let Some((_, old, _)) = session.buffered.pop_front() {
                        Self::reclaim_payload(&mut self.payload_pool, old);
                    }
                    self.stats.drops += 1;
                }
                let owned = Self::pooled_copy(&mut self.payload_pool, payload);
                session.buffered.push_back((topic_id, owned, sub_qos));
                continue;
            }
            let fwd_msg_id = if sub_qos == QoS::AtMostOnce {
                0
            } else {
                session.alloc_msg_id()
            };
            sink.push_publish(addr.clone(), false, sub_qos, topic_id, fwd_msg_id, payload);
            if sub_qos != QoS::AtMostOnce {
                let owned = Self::pooled_copy(&mut self.payload_pool, payload);
                session.outbound.insert(
                    fwd_msg_id,
                    Outbound {
                        topic_id,
                        payload: owned,
                        qos: sub_qos,
                        phase: if sub_qos == QoS::AtLeastOnce {
                            OutPhase::Puback
                        } else {
                            OutPhase::Pubrec
                        },
                        last_sent: now,
                        retries: 0,
                    },
                );
            }
            self.stats.publishes_out += 1;
        }
    }

    /// Drives outbound retransmissions. Call periodically.
    ///
    /// The allocating per-packet API; transports should prefer
    /// [`Broker::on_tick_into`].
    pub fn on_tick(&mut self, now: Nanos) -> Vec<(A, Packet)> {
        let mut out = Vec::new();
        self.tick(now, &mut VecSink(&mut out));
        out
    }

    /// Drives outbound retransmissions into a recycled output buffer.
    pub fn on_tick_into(&mut self, now: Nanos, out: &mut BrokerOutputs<A>) {
        self.tick(now, &mut WireSink::new(out));
    }

    fn tick<S: OutputSink<A>>(&mut self, now: Nanos, sink: &mut S) {
        // Falling congestion is advertised on the tick: a paced publisher
        // that stopped publishing would otherwise never learn that the
        // pressure cleared. Rising congestion is advertised inline in
        // `handle_publish`, so idle clients are never woken for bad news
        // they can't act on.
        if self.config.signal_congestion {
            let (total, worst) = self.backlog_scan();
            let level = self.level_from(total, worst);
            for idx in 0..self.order.len() {
                let addr = self.order[idx].clone();
                let Some(session) = self.sessions.get_mut(&addr) else {
                    continue;
                };
                if session.state == SessionState::Active && session.advised_level > level {
                    session.advised_level = level;
                    self.stats.advisories_sent += 1;
                    sink.push(addr, Packet::CongestionAdvisory { level });
                }
            }
        }

        let retry_ns = self.config.retry_timeout.as_nanos() as u64;
        let max_retries = self.config.max_retries;
        let mut ids: Vec<u16> = Vec::new();
        for idx in 0..self.order.len() {
            let addr = self.order[idx].clone();
            // Disjoint field borrows: the pool and stats stay usable
            // while the session is borrowed from `sessions`.
            let pool = &mut self.payload_pool;
            let stats = &mut self.stats;
            let Some(session) = self.sessions.get_mut(&addr) else {
                continue;
            };
            // An away durable session has no reachable transport address;
            // retransmission resumes (with a fresh budget) once the client
            // reconnects and the session migrates.
            if session.state == SessionState::Disconnected && session.durable {
                continue;
            }
            if session.outbound.is_empty() {
                continue;
            }
            ids.clear();
            ids.extend(session.outbound.keys().copied());
            ids.sort_unstable();
            for &id in &ids {
                let Some(o) = session.outbound.get_mut(&id) else {
                    continue;
                };
                if now.saturating_sub(o.last_sent) < retry_ns {
                    continue;
                }
                if o.retries >= max_retries {
                    if let Some(o) = session.outbound.remove(&id) {
                        Self::reclaim_payload(pool, o.payload);
                    }
                    stats.drops += 1;
                    continue;
                }
                o.retries += 1;
                o.last_sent = now;
                stats.retransmissions += 1;
                match o.phase {
                    OutPhase::Puback | OutPhase::Pubrec => {
                        sink.push_publish(addr.clone(), true, o.qos, o.topic_id, id, &o.payload);
                    }
                    OutPhase::Pubcomp => sink.push(addr.clone(), Packet::PubRel { msg_id: id }),
                }
            }
        }
    }
}

/// Minimal little-endian wire helpers for snapshot persistence.
pub mod wire {
    use prov_wal::le_bytes;

    /// Sequential reader over a persisted byte slice.
    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// Wraps a byte slice.
        pub fn new(buf: &'a [u8]) -> Reader<'a> {
            Reader { buf, pos: 0 }
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8], &'static str> {
            let end = self.pos.checked_add(n).ok_or("length overflow")?;
            if end > self.buf.len() {
                return Err("snapshot truncated");
            }
            let slice = &self.buf[self.pos..end];
            self.pos = end;
            Ok(slice)
        }

        /// Reads one byte.
        pub fn u8(&mut self) -> Result<u8, &'static str> {
            Ok(self.take(1)?[0])
        }

        /// Reads a little-endian `u16`.
        pub fn u16(&mut self) -> Result<u16, &'static str> {
            Ok(u16::from_le_bytes(le_bytes(self.take(2)?)))
        }

        /// Reads a little-endian `u32`.
        pub fn u32(&mut self) -> Result<u32, &'static str> {
            Ok(u32::from_le_bytes(le_bytes(self.take(4)?)))
        }

        /// Reads a little-endian `u64`.
        pub fn u64(&mut self) -> Result<u64, &'static str> {
            Ok(u64::from_le_bytes(le_bytes(self.take(8)?)))
        }

        /// Reads a `u32`-length-prefixed byte string.
        pub fn bytes(&mut self) -> Result<Vec<u8>, &'static str> {
            let len = self.u32()? as usize;
            Ok(self.take(len)?.to_vec())
        }

        /// Reads a `u32`-length-prefixed UTF-8 string.
        pub fn str(&mut self) -> Result<String, &'static str> {
            String::from_utf8(self.bytes()?).map_err(|_| "invalid UTF-8 in snapshot")
        }
    }

    /// Appends a `u32`-length-prefixed byte string.
    pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(out: &mut Vec<u8>, s: &str) {
        put_bytes(out, s.as_bytes());
    }
}

/// Peer addresses that can be persisted in a broker snapshot: the real-UDP
/// `SocketAddr` and the simulator's small integer ids.
pub trait PersistAddr: Clone + Eq + Hash + Sized {
    /// Appends the address to a snapshot buffer.
    fn encode_addr(&self, out: &mut Vec<u8>);
    /// Reads an address back.
    fn decode_addr(r: &mut wire::Reader<'_>) -> Result<Self, &'static str>;
}

impl PersistAddr for std::net::SocketAddr {
    fn encode_addr(&self, out: &mut Vec<u8>) {
        match self.ip() {
            std::net::IpAddr::V4(ip) => {
                out.push(4);
                out.extend_from_slice(&ip.octets());
            }
            std::net::IpAddr::V6(ip) => {
                out.push(6);
                out.extend_from_slice(&ip.octets());
            }
        }
        out.extend_from_slice(&self.port().to_le_bytes());
    }

    fn decode_addr(r: &mut wire::Reader<'_>) -> Result<Self, &'static str> {
        let ip: std::net::IpAddr = match r.u8()? {
            4 => {
                let mut octets = [0u8; 4];
                for o in &mut octets {
                    *o = r.u8()?;
                }
                std::net::Ipv4Addr::from(octets).into()
            }
            6 => {
                let mut octets = [0u8; 16];
                for o in &mut octets {
                    *o = r.u8()?;
                }
                std::net::Ipv6Addr::from(octets).into()
            }
            _ => return Err("unknown address family"),
        };
        let port = r.u16()?;
        Ok(std::net::SocketAddr::new(ip, port))
    }
}

impl PersistAddr for u32 {
    fn encode_addr(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode_addr(r: &mut wire::Reader<'_>) -> Result<Self, &'static str> {
        r.u32()
    }
}

// v2 added decode_errors / io_errors to the persisted stats block.
// v3 added the congestion watermarks to the config block and the
// backpressure counters (congestion_rejects / advisories_sent /
// backlog_high_water / snapshot_failures) to the stats block; v4 added the
// per-session recently-completed inbound QoS 2 window; v5 added the
// sharded-gateway counters (cross_shard_forwards /
// forward_ring_high_water) to the stats block.
const STATE_VERSION: u8 = 5;

/// How many completed inbound QoS 2 ids each session remembers to suppress
/// late duplicate PUBLISHes (see [`Session::completed_qos2`]). 64 ids at
/// 2 bytes each is negligible per session, yet orders of magnitude wider
/// than any realistic retransmission/delay window.
const COMPLETED_QOS2_WINDOW: usize = 64;

fn qos_byte(q: QoS) -> u8 {
    match q {
        QoS::AtMostOnce => 0,
        QoS::AtLeastOnce => 1,
        QoS::ExactlyOnce => 2,
    }
}

fn qos_from(b: u8) -> Result<QoS, &'static str> {
    match b {
        0 => Ok(QoS::AtMostOnce),
        1 => Ok(QoS::AtLeastOnce),
        2 => Ok(QoS::ExactlyOnce),
        _ => Err("invalid QoS byte"),
    }
}

impl<A: PersistAddr> Broker<A> {
    /// Serializes the complete broker state — config, topic registry,
    /// sessions (QoS handshake state, subscriptions, buffered messages),
    /// fan-out order, and stats — into a version-tagged byte blob.
    /// `UdpBroker::snapshot_to_file` wraps this in a checksummed,
    /// atomically-written file so a gateway survives process death, the
    /// durable analogue of the in-memory [`Broker::clone`] snapshot.
    pub fn encode_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(STATE_VERSION);
        // Config.
        out.push(self.config.gw_id);
        out.extend_from_slice(&(self.config.retry_timeout.as_nanos() as u64).to_le_bytes());
        out.extend_from_slice(&self.config.max_retries.to_le_bytes());
        out.extend_from_slice(&(self.config.max_buffered as u64).to_le_bytes());
        out.extend_from_slice(&(self.config.congestion_soft as u64).to_le_bytes());
        out.extend_from_slice(&(self.config.congestion_hard as u64).to_le_bytes());
        out.push(self.config.signal_congestion as u8);
        // Stats.
        for v in [
            self.stats.publishes_in,
            self.stats.publishes_out,
            self.stats.duplicates_suppressed,
            self.stats.retransmissions,
            self.stats.drops,
            self.stats.decode_errors,
            self.stats.io_errors,
            self.stats.congestion_rejects,
            self.stats.advisories_sent,
            self.stats.backlog_high_water,
            self.stats.snapshot_failures,
            self.stats.cross_shard_forwards,
            self.stats.forward_ring_high_water,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        // Registry.
        out.extend_from_slice(&self.registry.next_id().to_le_bytes());
        let entries = self.registry.entries();
        out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (id, name) in entries {
            out.extend_from_slice(&id.to_le_bytes());
            wire::put_str(&mut out, name);
        }
        // Fan-out order.
        out.extend_from_slice(&(self.order.len() as u32).to_le_bytes());
        for addr in &self.order {
            addr.encode_addr(&mut out);
        }
        // Sessions: the ones in fan-out order first, then any anonymous
        // publisher sessions the order list never tracked, sorted by their
        // encoded address so the whole encoding is deterministic (and the
        // membership check is O(1), not a per-session scan of `order`).
        let in_order: std::collections::HashSet<&A> = self.order.iter().collect();
        let mut anonymous: Vec<(Vec<u8>, &A)> = self
            .sessions
            .keys()
            .filter(|a| !in_order.contains(a))
            .map(|a| {
                let mut key = Vec::new();
                a.encode_addr(&mut key);
                (key, a)
            })
            .collect();
        anonymous.sort_by(|x, y| x.0.cmp(&y.0));
        let ordered: Vec<&A> = self
            .order
            .iter()
            .filter(|a| self.sessions.contains_key(*a))
            .chain(anonymous.iter().map(|(_, a)| *a))
            .collect();
        out.extend_from_slice(&(ordered.len() as u32).to_le_bytes());
        for addr in &ordered {
            let s = &self.sessions[*addr];
            addr.encode_addr(&mut out);
            wire::put_str(&mut out, &s.client_id);
            out.push(match s.state {
                SessionState::Active => 0,
                SessionState::Asleep => 1,
                SessionState::Disconnected => 2,
            });
            out.push(s.durable as u8);
            out.extend_from_slice(&s.last_seen.to_le_bytes());
            out.extend_from_slice(&s.next_msg_id.to_le_bytes());
            out.extend_from_slice(&(s.buffered.len() as u32).to_le_bytes());
            for (topic_id, payload, qos) in &s.buffered {
                out.extend_from_slice(&topic_id.to_le_bytes());
                out.push(qos_byte(*qos));
                wire::put_bytes(&mut out, payload);
            }
            out.extend_from_slice(&(s.subscriptions.len() as u32).to_le_bytes());
            for (filter, qos) in &s.subscriptions {
                wire::put_str(&mut out, filter);
                out.push(qos_byte(*qos));
            }
            let mut out_ids: Vec<u16> = s.outbound.keys().copied().collect();
            out_ids.sort_unstable();
            out.extend_from_slice(&(out_ids.len() as u32).to_le_bytes());
            for id in out_ids {
                let o = &s.outbound[&id];
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&o.topic_id.to_le_bytes());
                out.push(qos_byte(o.qos));
                out.push(match o.phase {
                    OutPhase::Puback => 0,
                    OutPhase::Pubrec => 1,
                    OutPhase::Pubcomp => 2,
                });
                out.extend_from_slice(&o.last_sent.to_le_bytes());
                out.extend_from_slice(&o.retries.to_le_bytes());
                wire::put_bytes(&mut out, &o.payload);
            }
            let mut in_ids: Vec<u16> = s.inbound_qos2.keys().copied().collect();
            in_ids.sort_unstable();
            out.extend_from_slice(&(in_ids.len() as u32).to_le_bytes());
            for id in in_ids {
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        // v4 appendix: per-session recently-completed inbound QoS 2
        // windows, in session order, FIFO order preserved so eviction
        // order survives a restart. An appendix (rather than a field
        // inside each session block) keeps the v1–v3 session layout
        // byte-stable.
        out.extend_from_slice(&(ordered.len() as u32).to_le_bytes());
        for addr in &ordered {
            let s = &self.sessions[*addr];
            out.extend_from_slice(&(s.completed_qos2.len() as u32).to_le_bytes());
            for id in &s.completed_qos2 {
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        out
    }

    /// Rebuilds a broker from [`Broker::encode_state`] bytes. Older
    /// versions are migrated losslessly — v1 snapshots predate the
    /// `decode_errors`/`io_errors` counters, v2 snapshots predate the
    /// congestion watermarks and backpressure counters — with the missing
    /// fields defaulting, so a gateway upgrade does not discard the
    /// durable sessions its snapshot file exists to preserve.
    pub fn decode_state(bytes: &[u8]) -> Result<Broker<A>, &'static str> {
        let r = &mut wire::Reader::new(bytes);
        let version = r.u8()?;
        if !(1..=STATE_VERSION).contains(&version) {
            return Err("unsupported broker snapshot version");
        }
        let defaults = BrokerConfig::default();
        let config = BrokerConfig {
            gw_id: r.u8()?,
            retry_timeout: Duration::from_nanos(r.u64()?),
            max_retries: r.u32()?,
            max_buffered: r.u64()? as usize,
            congestion_soft: if version >= 3 {
                r.u64()? as usize
            } else {
                defaults.congestion_soft
            },
            congestion_hard: if version >= 3 {
                r.u64()? as usize
            } else {
                defaults.congestion_hard
            },
            signal_congestion: if version >= 3 {
                r.u8()? != 0
            } else {
                defaults.signal_congestion
            },
        };
        let stats = BrokerStats {
            publishes_in: r.u64()?,
            publishes_out: r.u64()?,
            duplicates_suppressed: r.u64()?,
            retransmissions: r.u64()?,
            drops: r.u64()?,
            decode_errors: if version >= 2 { r.u64()? } else { 0 },
            io_errors: if version >= 2 { r.u64()? } else { 0 },
            congestion_rejects: if version >= 3 { r.u64()? } else { 0 },
            advisories_sent: if version >= 3 { r.u64()? } else { 0 },
            backlog_high_water: if version >= 3 { r.u64()? } else { 0 },
            snapshot_failures: if version >= 3 { r.u64()? } else { 0 },
            cross_shard_forwards: if version >= 5 { r.u64()? } else { 0 },
            forward_ring_high_water: if version >= 5 { r.u64()? } else { 0 },
        };
        let next_id = r.u16()?;
        let n_topics = r.u32()?;
        let mut topics = Vec::with_capacity(n_topics as usize);
        for _ in 0..n_topics {
            let id = r.u16()?;
            topics.push((id, r.str()?));
        }
        let registry =
            TopicRegistry::from_entries(next_id, topics.iter().map(|(id, n)| (*id, n.as_str())));
        let n_order = r.u32()?;
        let mut order = Vec::with_capacity(n_order as usize);
        for _ in 0..n_order {
            order.push(A::decode_addr(r)?);
        }
        let n_sessions = r.u32()?;
        let mut sessions = HashMap::with_capacity(n_sessions as usize);
        let mut read_order: Vec<A> = Vec::with_capacity(n_sessions as usize);
        for _ in 0..n_sessions {
            let addr = A::decode_addr(r)?;
            let client_id = r.str()?;
            let state = match r.u8()? {
                0 => SessionState::Active,
                1 => SessionState::Asleep,
                2 => SessionState::Disconnected,
                _ => return Err("invalid session state"),
            };
            let durable = r.u8()? != 0;
            let last_seen = r.u64()?;
            let next_msg_id = r.u16()?;
            let n_buffered = r.u32()?;
            let mut buffered = VecDeque::with_capacity(n_buffered as usize);
            for _ in 0..n_buffered {
                let topic_id = r.u16()?;
                let qos = qos_from(r.u8()?)?;
                buffered.push_back((topic_id, r.bytes()?, qos));
            }
            let n_subs = r.u32()?;
            let mut subscriptions = Vec::with_capacity(n_subs as usize);
            for _ in 0..n_subs {
                let filter = r.str()?;
                subscriptions.push((filter, qos_from(r.u8()?)?));
            }
            let n_outbound = r.u32()?;
            let mut outbound = HashMap::with_capacity(n_outbound as usize);
            for _ in 0..n_outbound {
                let id = r.u16()?;
                let topic_id = r.u16()?;
                let qos = qos_from(r.u8()?)?;
                let phase = match r.u8()? {
                    0 => OutPhase::Puback,
                    1 => OutPhase::Pubrec,
                    2 => OutPhase::Pubcomp,
                    _ => return Err("invalid outbound phase"),
                };
                let last_sent = r.u64()?;
                let retries = r.u32()?;
                let payload = r.bytes()?;
                outbound.insert(
                    id,
                    Outbound {
                        topic_id,
                        payload,
                        qos,
                        phase,
                        last_sent,
                        retries,
                    },
                );
            }
            let n_inbound = r.u32()?;
            let mut inbound_qos2 = HashMap::with_capacity(n_inbound as usize);
            for _ in 0..n_inbound {
                inbound_qos2.insert(r.u16()?, ());
            }
            read_order.push(addr.clone());
            sessions.insert(
                addr,
                Session {
                    client_id,
                    state,
                    durable,
                    buffered,
                    subscriptions,
                    next_msg_id,
                    outbound,
                    inbound_qos2,
                    completed_qos2: VecDeque::new(),
                    last_seen,
                    advised_level: 0,
                },
            );
        }
        // v4 appendix: recently-completed inbound QoS 2 windows, matched
        // to sessions by encode order.
        if version >= 4 {
            let n_appendix = r.u32()?;
            if n_appendix as usize != read_order.len() {
                return Err("completed-qos2 appendix session count mismatch");
            }
            for addr in &read_order {
                let n_completed = r.u32()?;
                let s = sessions.get_mut(addr).ok_or("appendix session missing")?;
                for _ in 0..n_completed {
                    s.completed_qos2.push_back(r.u16()?);
                }
            }
        }
        Ok(Broker {
            config,
            registry,
            sessions,
            order,
            stats,
            route_epoch: 0,
            routes: HashMap::new(),
            payload_pool: Vec::new(),
            last_publish_forwarded: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Addr = u32;

    fn broker() -> Broker<Addr> {
        Broker::new(BrokerConfig::default())
    }

    fn connect(b: &mut Broker<Addr>, addr: Addr, id: &str) {
        let out = b.on_packet(
            0,
            addr,
            Packet::Connect {
                clean_session: true,
                duration: 60,
                client_id: id.into(),
            },
        );
        assert!(matches!(
            out[0].1,
            Packet::ConnAck {
                code: ReturnCode::Accepted
            }
        ));
    }

    fn register(b: &mut Broker<Addr>, addr: Addr, name: &str) -> u16 {
        let out = b.on_packet(
            0,
            addr,
            Packet::Register {
                topic_id: 0,
                msg_id: 1,
                topic_name: name.into(),
            },
        );
        match out[0].1 {
            Packet::RegAck {
                topic_id,
                code: ReturnCode::Accepted,
                ..
            } => topic_id,
            ref p => panic!("unexpected {p:?}"),
        }
    }

    fn subscribe(b: &mut Broker<Addr>, addr: Addr, filter: &str, qos: QoS) {
        let out = b.on_packet(
            0,
            addr,
            Packet::Subscribe {
                dup: false,
                qos,
                msg_id: 2,
                topic: TopicRef::Name(filter.into()),
            },
        );
        assert!(matches!(
            out[0].1,
            Packet::SubAck {
                code: ReturnCode::Accepted,
                ..
            }
        ));
    }

    #[test]
    fn qos0_pub_sub_roundtrip() {
        let mut b = broker();
        connect(&mut b, 1, "pub");
        connect(&mut b, 2, "sub");
        let tid = register(&mut b, 1, "t/x");
        subscribe(&mut b, 2, "t/x", QoS::AtMostOnce);
        let out = b.on_packet(
            0,
            1,
            Packet::Publish {
                dup: false,
                qos: QoS::AtMostOnce,
                retain: false,
                topic: TopicRef::Id(tid),
                msg_id: 0,
                payload: vec![7],
            },
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 2);
        assert!(matches!(&out[0].1, Packet::Publish { payload, .. } if payload == &vec![7]));
        assert_eq!(b.stats().publishes_out, 1);
    }

    #[test]
    fn wildcard_subscription_receives() {
        let mut b = broker();
        connect(&mut b, 1, "pub");
        connect(&mut b, 2, "sub");
        let tid = register(&mut b, 1, "provlight/wf1/dev1");
        subscribe(&mut b, 2, "provlight/#", QoS::AtMostOnce);
        let out = b.on_packet(
            0,
            1,
            Packet::Publish {
                dup: false,
                qos: QoS::AtMostOnce,
                retain: false,
                topic: TopicRef::Id(tid),
                msg_id: 0,
                payload: vec![1],
            },
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 2);
    }

    #[test]
    fn qos2_publisher_handshake_and_dedup() {
        let mut b = broker();
        connect(&mut b, 1, "pub");
        connect(&mut b, 2, "sub");
        let tid = register(&mut b, 1, "t");
        subscribe(&mut b, 2, "t", QoS::AtMostOnce);

        let publish = Packet::Publish {
            dup: false,
            qos: QoS::ExactlyOnce,
            retain: false,
            topic: TopicRef::Id(tid),
            msg_id: 10,
            payload: vec![1],
        };
        let out = b.on_packet(0, 1, publish.clone());
        // PUBREC to publisher + forward to subscriber (downgraded to its
        // subscription QoS 0).
        assert!(out
            .iter()
            .any(|(a, p)| *a == 1 && matches!(p, Packet::PubRec { msg_id: 10 })));
        assert!(out.iter().any(|(a, p)| *a == 2
            && matches!(
                p,
                Packet::Publish {
                    qos: QoS::AtMostOnce,
                    ..
                }
            )));

        // DUP retransmission before PUBREL: PUBREC again, no re-forward.
        let out = b.on_packet(1, 1, publish);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, Packet::PubRec { msg_id: 10 }));
        assert_eq!(b.stats().duplicates_suppressed, 1);
        assert_eq!(b.stats().publishes_out, 1);

        // PUBREL completes the exchange.
        let out = b.on_packet(2, 1, Packet::PubRel { msg_id: 10 });
        assert!(matches!(out[0].1, Packet::PubComp { msg_id: 10 }));
    }

    #[test]
    fn late_duplicate_publish_after_pubrel_is_suppressed() {
        let mut b = broker();
        connect(&mut b, 1, "pub");
        connect(&mut b, 2, "sub");
        let tid = register(&mut b, 1, "t");
        subscribe(&mut b, 2, "t", QoS::AtMostOnce);
        let publish = Packet::Publish {
            dup: false,
            qos: QoS::ExactlyOnce,
            retain: false,
            topic: TopicRef::Id(tid),
            msg_id: 10,
            payload: vec![1],
        };
        b.on_packet(0, 1, publish.clone());
        b.on_packet(1, 1, Packet::PubRel { msg_id: 10 });

        // A delayed copy arrives AFTER the handshake completed: it must
        // not fan out as a fresh message, but still gets its PUBREC so the
        // publisher's retransmission state machine can finish again.
        let out = b.on_packet(2, 1, publish);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, Packet::PubRec { msg_id: 10 }));
        assert_eq!(b.stats().publishes_out, 1);
        assert_eq!(b.stats().duplicates_suppressed, 1);

        // The recently-completed window survives a snapshot round-trip, so
        // a late duplicate straddling a gateway restart is also caught.
        let mut restored = Broker::<Addr>::decode_state(&b.encode_state()).unwrap();
        let out = b.on_packet(3, 1, Packet::PubRel { msg_id: 10 });
        assert!(matches!(out[0].1, Packet::PubComp { msg_id: 10 }));
        let out = restored.on_packet(
            3,
            1,
            Packet::Publish {
                dup: true,
                qos: QoS::ExactlyOnce,
                retain: false,
                topic: TopicRef::Id(tid),
                msg_id: 10,
                payload: vec![1],
            },
        );
        assert!(matches!(out[0].1, Packet::PubRec { msg_id: 10 }));
        assert_eq!(restored.stats().publishes_out, 1);
        assert_eq!(restored.stats().duplicates_suppressed, 2);
    }

    #[test]
    fn qos2_subscriber_receives_via_four_way() {
        let mut b = broker();
        connect(&mut b, 1, "pub");
        connect(&mut b, 2, "sub");
        let tid = register(&mut b, 1, "t");
        subscribe(&mut b, 2, "t", QoS::ExactlyOnce);
        let out = b.on_packet(
            0,
            1,
            Packet::Publish {
                dup: false,
                qos: QoS::ExactlyOnce,
                retain: false,
                topic: TopicRef::Id(tid),
                msg_id: 5,
                payload: vec![1],
            },
        );
        let fwd_id = out
            .iter()
            .find_map(|(a, p)| match p {
                Packet::Publish {
                    qos: QoS::ExactlyOnce,
                    msg_id,
                    ..
                } if *a == 2 => Some(*msg_id),
                _ => None,
            })
            .expect("forwarded at QoS 2");
        // Subscriber answers PUBREC -> broker sends PUBREL.
        let out = b.on_packet(1, 2, Packet::PubRec { msg_id: fwd_id });
        assert!(matches!(out[0].1, Packet::PubRel { .. }));
        // Subscriber PUBCOMP clears broker state; tick produces nothing.
        b.on_packet(2, 2, Packet::PubComp { msg_id: fwd_id });
        assert!(b.on_tick(u64::MAX / 2).is_empty());
    }

    #[test]
    fn broker_retransmits_unacked_qos1_then_drops() {
        let cfg = BrokerConfig {
            retry_timeout: Duration::from_secs(1),
            max_retries: 1,
            ..BrokerConfig::default()
        };
        let mut b: Broker<Addr> = Broker::new(cfg);
        connect(&mut b, 1, "pub");
        connect(&mut b, 2, "sub");
        let tid = register(&mut b, 1, "t");
        subscribe(&mut b, 2, "t", QoS::AtLeastOnce);
        b.on_packet(
            0,
            1,
            Packet::Publish {
                dup: false,
                qos: QoS::AtLeastOnce,
                retain: false,
                topic: TopicRef::Id(tid),
                msg_id: 3,
                payload: vec![1],
            },
        );
        let s = 1_000_000_000u64;
        let out = b.on_tick(2 * s);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, Packet::Publish { dup: true, .. }));
        assert_eq!(b.stats().retransmissions, 1);
        // Exhausted on the next tick.
        let out = b.on_tick(4 * s);
        assert!(out.is_empty());
        assert_eq!(b.stats().drops, 1);
    }

    #[test]
    fn publish_to_unknown_topic_rejected() {
        let mut b = broker();
        connect(&mut b, 1, "pub");
        let out = b.on_packet(
            0,
            1,
            Packet::Publish {
                dup: false,
                qos: QoS::AtLeastOnce,
                retain: false,
                topic: TopicRef::Id(999),
                msg_id: 1,
                payload: vec![],
            },
        );
        assert!(matches!(
            out[0].1,
            Packet::PubAck {
                code: ReturnCode::InvalidTopicId,
                ..
            }
        ));
    }

    #[test]
    fn disconnect_stops_delivery() {
        let mut b = broker();
        connect(&mut b, 1, "pub");
        connect(&mut b, 2, "sub");
        let tid = register(&mut b, 1, "t");
        subscribe(&mut b, 2, "t", QoS::AtMostOnce);
        b.on_packet(0, 2, Packet::Disconnect { duration: None });
        assert_eq!(b.session_count(), 1);
        let out = b.on_packet(
            0,
            1,
            Packet::Publish {
                dup: false,
                qos: QoS::AtMostOnce,
                retain: false,
                topic: TopicRef::Id(tid),
                msg_id: 0,
                payload: vec![],
            },
        );
        assert!(out.is_empty());
    }

    #[test]
    fn per_device_topics_route_independently() {
        // The Fig. 5 deployment: 64 devices each publishing to their own
        // topic, one translator subscription per topic.
        let mut b = broker();
        for dev in 0..8u32 {
            connect(&mut b, dev, &format!("dev{dev}"));
        }
        let translator = 100;
        connect(&mut b, translator, "translator");
        let mut tids = Vec::new();
        for dev in 0..8u32 {
            let tid = register(&mut b, dev, &format!("provlight/wf/dev{dev}"));
            tids.push(tid);
        }
        for dev in 0..8u32 {
            subscribe(
                &mut b,
                translator,
                &format!("provlight/wf/dev{dev}"),
                QoS::AtMostOnce,
            );
        }
        for (dev, tid) in tids.iter().enumerate() {
            let out = b.on_packet(
                0,
                dev as u32,
                Packet::Publish {
                    dup: false,
                    qos: QoS::AtMostOnce,
                    retain: false,
                    topic: TopicRef::Id(*tid),
                    msg_id: 0,
                    payload: vec![dev as u8],
                },
            );
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].0, translator);
        }
        assert_eq!(b.stats().publishes_out, 8);
    }

    #[test]
    fn searchgw_answered() {
        let mut b = broker();
        let out = b.on_packet(0, 9, Packet::SearchGw { radius: 1 });
        assert!(matches!(out[0].1, Packet::GwInfo { gw_id: 1 }));
    }

    #[test]
    fn sleeping_client_buffers_until_ping() {
        let mut b = broker();
        connect(&mut b, 1, "pub");
        connect(&mut b, 2, "sleeper");
        let tid = register(&mut b, 1, "t");
        subscribe(&mut b, 2, "t", QoS::AtMostOnce);

        // Client 2 goes to sleep (DISCONNECT with duration).
        let out = b.on_packet(
            0,
            2,
            Packet::Disconnect {
                duration: Some(300),
            },
        );
        assert!(matches!(out[0].1, Packet::Disconnect { .. }));
        assert_eq!(b.session_count(), 1);
        assert_eq!(b.sleeping_count(), 1);

        // Publishes while asleep are buffered, not sent.
        for i in 0..3u8 {
            let out = b.on_packet(
                1,
                1,
                Packet::Publish {
                    dup: false,
                    qos: QoS::AtMostOnce,
                    retain: false,
                    topic: TopicRef::Id(tid),
                    msg_id: 0,
                    payload: vec![i],
                },
            );
            assert!(out.is_empty(), "asleep client must not receive directly");
        }

        // PINGREQ flushes the buffer then answers PINGRESP, in order.
        let out = b.on_packet(2, 2, Packet::PingReq);
        assert_eq!(out.len(), 4);
        for (i, (to, p)) in out[..3].iter().enumerate() {
            assert_eq!(*to, 2);
            assert!(
                matches!(p, Packet::Publish { payload, .. } if payload == &vec![i as u8]),
                "unexpected {p:?}"
            );
        }
        assert!(matches!(out[3].1, Packet::PingResp));

        // Buffer is drained: next ping is just a pong.
        let out = b.on_packet(3, 2, Packet::PingReq);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn sleeping_qos1_buffered_delivery_uses_outbound_state() {
        let cfg = BrokerConfig {
            retry_timeout: Duration::from_secs(1),
            ..BrokerConfig::default()
        };
        let mut b: Broker<Addr> = Broker::new(cfg);
        connect(&mut b, 1, "pub");
        connect(&mut b, 2, "sleeper");
        let tid = register(&mut b, 1, "t");
        subscribe(&mut b, 2, "t", QoS::AtLeastOnce);
        b.on_packet(0, 2, Packet::Disconnect { duration: Some(60) });
        b.on_packet(
            0,
            1,
            Packet::Publish {
                dup: false,
                qos: QoS::AtLeastOnce,
                retain: false,
                topic: TopicRef::Id(tid),
                msg_id: 9,
                payload: vec![7],
            },
        );
        let out = b.on_packet(1, 2, Packet::PingReq);
        let msg_id = out
            .iter()
            .find_map(|(_, p)| match p {
                Packet::Publish { msg_id, .. } => Some(*msg_id),
                _ => None,
            })
            .expect("buffered publish delivered");
        // Unacked buffered delivery retransmits like any outbound QoS 1.
        let s = 1_000_000_000u64;
        let out = b.on_tick(3 * s);
        assert!(matches!(out[0].1, Packet::Publish { dup: true, .. }));
        // Ack clears it.
        b.on_packet(
            4 * s,
            2,
            Packet::PubAck {
                topic_id: tid,
                msg_id,
                code: ReturnCode::Accepted,
            },
        );
        assert!(b.on_tick(10 * s).is_empty());
    }

    fn connect_durable(b: &mut Broker<Addr>, addr: Addr, id: &str) {
        let out = b.on_packet(
            0,
            addr,
            Packet::Connect {
                clean_session: false,
                duration: 60,
                client_id: id.into(),
            },
        );
        assert!(matches!(
            out[0].1,
            Packet::ConnAck {
                code: ReturnCode::Accepted
            }
        ));
    }

    #[test]
    fn durable_session_buffers_while_away_and_migrates_on_reconnect() {
        let mut b = broker();
        connect(&mut b, 1, "pub");
        connect_durable(&mut b, 2, "translator");
        let tid = register(&mut b, 1, "t");
        subscribe(&mut b, 2, "t", QoS::AtLeastOnce);

        // The durable subscriber's transport dies (graceful disconnect
        // stands in for the lost link).
        b.on_packet(0, 2, Packet::Disconnect { duration: None });
        // Publishes while away are buffered, not dropped.
        for i in 0..3u8 {
            let out = b.on_packet(
                1,
                1,
                Packet::Publish {
                    dup: false,
                    qos: QoS::AtLeastOnce,
                    retain: false,
                    topic: TopicRef::Id(tid),
                    msg_id: 0,
                    payload: vec![i],
                },
            );
            // Only the publisher's PUBACK comes back; nothing is forwarded.
            assert!(out.iter().all(|(a, _)| *a == 1), "away session got traffic");
        }

        // Reconnect from a NEW address (rebound socket): the session
        // migrates and the buffered messages follow the CONNACK in order.
        let out = b.on_packet(
            2,
            99,
            Packet::Connect {
                clean_session: false,
                duration: 60,
                client_id: "translator".into(),
            },
        );
        assert!(matches!(out[0].1, Packet::ConnAck { .. }));
        let delivered: Vec<u8> = out[1..]
            .iter()
            .map(|(a, p)| {
                assert_eq!(*a, 99);
                match p {
                    Packet::Publish { payload, .. } => payload[0],
                    p => panic!("unexpected {p:?}"),
                }
            })
            .collect();
        assert_eq!(delivered, vec![0, 1, 2]);
        // The old address no longer exists as a session.
        assert_eq!(b.session_count(), 2);
        // New deliveries flow directly to the new address.
        let out = b.on_packet(
            3,
            1,
            Packet::Publish {
                dup: false,
                qos: QoS::AtMostOnce,
                retain: false,
                topic: TopicRef::Id(tid),
                msg_id: 0,
                payload: vec![9],
            },
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 99);
    }

    #[test]
    fn migration_preserves_qos2_dedup_state() {
        let mut b = broker();
        connect_durable(&mut b, 1, "edge-device");
        connect(&mut b, 2, "sub");
        let tid = register(&mut b, 1, "t");
        subscribe(&mut b, 2, "t", QoS::AtMostOnce);

        // QoS 2 publish forwarded on first receipt; PUBREC lost on the way
        // back (the client never learns).
        let publish = Packet::Publish {
            dup: false,
            qos: QoS::ExactlyOnce,
            retain: false,
            topic: TopicRef::Id(tid),
            msg_id: 7,
            payload: vec![1],
        };
        b.on_packet(0, 1, publish.clone());
        assert_eq!(b.stats().publishes_out, 1);

        // The publisher reconnects from a new address and retransmits the
        // unacked publish with DUP: the migrated session's dedup state
        // suppresses the re-forward — exactly-once survives the reconnect.
        b.on_packet(
            1,
            50,
            Packet::Connect {
                clean_session: false,
                duration: 60,
                client_id: "edge-device".into(),
            },
        );
        let mut dup = publish;
        if let Packet::Publish { dup: d, .. } = &mut dup {
            *d = true;
        }
        let out = b.on_packet(2, 50, dup);
        assert_eq!(out.len(), 1, "duplicate must only be PUBRECed: {out:?}");
        assert!(matches!(out[0].1, Packet::PubRec { msg_id: 7 }));
        assert_eq!(b.stats().duplicates_suppressed, 1);
        assert_eq!(b.stats().publishes_out, 1);
    }

    #[test]
    fn away_buffer_is_bounded_oldest_first() {
        let cfg = BrokerConfig {
            max_buffered: 2,
            ..BrokerConfig::default()
        };
        let mut b: Broker<Addr> = Broker::new(cfg);
        connect(&mut b, 1, "pub");
        connect_durable(&mut b, 2, "sub");
        let tid = register(&mut b, 1, "t");
        subscribe(&mut b, 2, "t", QoS::AtMostOnce);
        b.on_packet(0, 2, Packet::Disconnect { duration: None });
        for i in 0..5u8 {
            b.on_packet(
                1,
                1,
                Packet::Publish {
                    dup: false,
                    qos: QoS::AtMostOnce,
                    retain: false,
                    topic: TopicRef::Id(tid),
                    msg_id: 0,
                    payload: vec![i],
                },
            );
        }
        assert_eq!(b.stats().drops, 3);
        // Reconnect delivers only the newest two, in order.
        let out = b.on_packet(
            2,
            2,
            Packet::Connect {
                clean_session: false,
                duration: 60,
                client_id: "sub".into(),
            },
        );
        let delivered: Vec<u8> = out[1..]
            .iter()
            .filter_map(|(_, p)| match p {
                Packet::Publish { payload, .. } => Some(payload[0]),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![3, 4]);
    }

    #[test]
    fn clean_connect_drops_stale_session_at_old_address() {
        let mut b = broker();
        connect(&mut b, 1, "pub");
        connect(&mut b, 2, "mover");
        let tid = register(&mut b, 1, "t");
        subscribe(&mut b, 2, "t", QoS::AtMostOnce);
        // Same client id reconnects cleanly from a new address.
        connect(&mut b, 3, "mover");
        let out = b.on_packet(
            0,
            1,
            Packet::Publish {
                dup: false,
                qos: QoS::AtMostOnce,
                retain: false,
                topic: TopicRef::Id(tid),
                msg_id: 0,
                payload: vec![1],
            },
        );
        // The stale session at addr 2 is gone; the clean session at addr 3
        // has no subscriptions yet, so nothing is delivered anywhere.
        assert!(out.is_empty());
        assert_eq!(b.session_count(), 2);
    }

    #[test]
    fn state_roundtrip_preserves_sessions_and_qos_state() {
        let mut b = broker();
        connect(&mut b, 1, "pub");
        connect_durable(&mut b, 2, "translator");
        let tid = register(&mut b, 1, "t/persist");
        subscribe(&mut b, 2, "t/persist", QoS::ExactlyOnce);
        // A durable subscriber goes away and accumulates buffered messages.
        b.on_packet(0, 2, Packet::Disconnect { duration: None });
        for i in 0..3u8 {
            b.on_packet(
                1,
                1,
                Packet::Publish {
                    dup: false,
                    qos: QoS::AtLeastOnce,
                    retain: false,
                    topic: TopicRef::Id(tid),
                    msg_id: i as u16 + 1,
                    payload: vec![i],
                },
            );
        }
        // An inbound QoS 2 exchange parked mid-handshake (PUBREL pending).
        b.on_packet(
            2,
            1,
            Packet::Publish {
                dup: false,
                qos: QoS::ExactlyOnce,
                retain: false,
                topic: TopicRef::Id(tid),
                msg_id: 42,
                payload: vec![9],
            },
        );

        let bytes = b.encode_state();
        let restored = Broker::<Addr>::decode_state(&bytes).unwrap();
        // Deterministic encoding: a re-encode of the decoded state is
        // byte-identical, so every field round-tripped.
        assert_eq!(restored.encode_state(), bytes);
        assert_eq!(restored.stats(), b.stats());
        assert_eq!(restored.session_count(), b.session_count());
        assert_eq!(restored.registry.entries(), b.registry.entries());

        // Behavioural check: the restored broker still dedups the QoS 2
        // retransmission and delivers the buffered backlog on reconnect.
        let mut restored = restored;
        let out = restored.on_packet(
            3,
            1,
            Packet::Publish {
                dup: true,
                qos: QoS::ExactlyOnce,
                retain: false,
                topic: TopicRef::Id(tid),
                msg_id: 42,
                payload: vec![9],
            },
        );
        assert_eq!(out.len(), 1, "duplicate must only be PUBRECed: {out:?}");
        let out = restored.on_packet(
            4,
            7,
            Packet::Connect {
                clean_session: false,
                duration: 60,
                client_id: "translator".into(),
            },
        );
        let delivered: Vec<u8> = out[1..]
            .iter()
            .filter_map(|(_, p)| match p {
                Packet::Publish { payload, .. } => Some(payload[0]),
                _ => None,
            })
            .collect();
        // The three QoS 1 publishes plus the first-receipt QoS 2 forward.
        assert_eq!(
            delivered,
            vec![0, 1, 2, 9],
            "buffered backlog lost in persistence"
        );
    }

    #[test]
    fn old_snapshots_migrate_with_zeroed_new_counters() {
        let mut b = broker();
        connect(&mut b, 1, "pub");
        connect_durable(&mut b, 2, "sub");
        let tid = register(&mut b, 1, "t/v1");
        subscribe(&mut b, 2, "t/v1", QoS::AtLeastOnce);
        b.on_packet(
            0,
            1,
            Packet::Publish {
                dup: false,
                qos: QoS::AtLeastOnce,
                retain: false,
                topic: TopicRef::Id(tid),
                msg_id: 3,
                payload: vec![9],
            },
        );
        assert_eq!(b.stats().decode_errors, 0);
        assert_eq!(b.stats().io_errors, 0);

        let v5 = b.encode_state();
        assert_eq!(
            v5[0], STATE_VERSION,
            "bumping STATE_VERSION requires extending this migration test"
        );
        let cfg_end = 1 + 1 + 8 + 4 + 8; // version + the v1 config fields
        let cfg_extra = 8 + 8 + 1; // v3: congestion watermarks + signal flag
        let stats_at = cfg_end + cfg_extra;
        // The v4 appendix for this broker: session count + one (empty)
        // completed-QoS2 window per session, at the very end.
        let appendix = 4 + 4 * b.session_count();

        // Reconstruct the v4 wire form: version byte 4, stats block
        // without the two v5 sharded-gateway counters.
        let mut v4 = v5.clone();
        v4.drain(stats_at + 11 * 8..stats_at + 13 * 8);
        v4[0] = 4;
        let restored = Broker::<Addr>::decode_state(&v4).expect("v4 snapshot accepted");
        assert_eq!(restored.stats(), b.stats());
        assert_eq!(restored.stats().cross_shard_forwards, 0);
        assert_eq!(restored.stats().forward_ring_high_water, 0);
        assert_eq!(restored.encode_state(), v5);

        // The v3 wire form additionally predates the appendix.
        let mut v3 = v4.clone();
        v3.truncate(v3.len() - appendix);
        v3[0] = 3;
        let restored = Broker::<Addr>::decode_state(&v3).expect("v3 snapshot accepted");
        assert_eq!(restored.stats(), b.stats());
        assert_eq!(restored.encode_state(), v5);

        // The v2 wire form additionally predates the congestion config
        // fields and the four v3 stats counters.
        let mut v2 = v3.clone();
        v2.drain(stats_at + 7 * 8..stats_at + 11 * 8);
        v2.drain(cfg_end..stats_at);
        v2[0] = 2;
        let restored = Broker::<Addr>::decode_state(&v2).expect("v2 snapshot accepted");
        assert_eq!(restored.stats(), b.stats());
        assert_eq!(restored.encode_state(), v5);

        // The v1 form additionally predates decode_errors / io_errors.
        let mut v1 = v3.clone();
        v1.drain(stats_at + 5 * 8..stats_at + 11 * 8);
        v1.drain(cfg_end..stats_at);
        v1[0] = 1;
        let restored = Broker::<Addr>::decode_state(&v1).expect("v1 snapshot accepted");
        assert_eq!(restored.stats(), b.stats());
        assert_eq!(restored.session_count(), b.session_count());
        // Re-encoding a migrated snapshot produces the v5 form (the
        // congestion config fields take their defaults, the completed
        // windows start empty, the sharded counters are zero).
        assert_eq!(restored.encode_state(), v5);

        // The v3-added counter itself: counted, persisted, and restored in
        // the current wire form.
        b.note_snapshot_failure();
        assert_eq!(b.stats().snapshot_failures, 1);
        let restored =
            Broker::<Addr>::decode_state(&b.encode_state()).expect("current snapshot accepted");
        assert_eq!(restored.stats().snapshot_failures, 1);

        // The v5-added counters: counted, persisted, and restored in the
        // current wire form.
        b.note_cross_shard_forward(3);
        b.note_cross_shard_forward(1);
        assert_eq!(b.stats().cross_shard_forwards, 2);
        assert_eq!(b.stats().forward_ring_high_water, 3);
        let restored =
            Broker::<Addr>::decode_state(&b.encode_state()).expect("current snapshot accepted");
        assert_eq!(restored.stats().cross_shard_forwards, 2);
        assert_eq!(restored.stats().forward_ring_high_water, 3);
    }

    #[test]
    fn predefined_topic_seeded_after_traffic_routes_fresh() {
        // `registry_mut` conservatively invalidates the route cache, so a
        // topic seeded mid-flight is routable immediately — no stale
        // "unknown id" or empty route can be served from the cache.
        let mut b = broker();
        connect(&mut b, 1, "pub");
        connect(&mut b, 2, "sub");
        subscribe(&mut b, 2, "pre/#", QoS::AtMostOnce);
        let publish = || Packet::Publish {
            dup: false,
            qos: QoS::AtMostOnce,
            retain: false,
            topic: TopicRef::Predefined(500),
            msg_id: 0,
            payload: vec![1],
        };
        // Unknown predefined id is rejected toward the publisher.
        let out = b.on_packet(0, 1, publish());
        assert!(matches!(
            out[0].1,
            Packet::PubAck {
                code: ReturnCode::InvalidTopicId,
                ..
            }
        ));
        assert!(b.registry_mut().register_predefined(500, "pre/x"));
        // An id collision is refused, never silently remapped (remapping
        // would also require a route-cache invalidation to be correct).
        assert!(!b.registry_mut().register_predefined(500, "pre/other"));
        let out = b.on_packet(1, 1, publish());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 2, "seeded topic must route to the wildcard sub");
    }

    #[test]
    fn decode_state_rejects_corrupt_bytes() {
        let b = broker();
        let mut bytes = b.encode_state();
        assert!(Broker::<Addr>::decode_state(&bytes[..bytes.len() - 1]).is_err());
        bytes[0] = 99; // unknown version
        assert!(Broker::<Addr>::decode_state(&bytes).is_err());
    }

    /// Two brokers fed the same packet sequence — one through the
    /// allocating `on_packet` API, one through the wire-encoding
    /// `on_packet_into` path — must produce identical outputs and state.
    #[test]
    fn wire_path_matches_vec_path() {
        let mut vec_b = broker();
        let mut wire_b = broker();
        let mut out = BrokerOutputs::new();

        let mut feed = |vb: &mut Broker<Addr>, wb: &mut Broker<Addr>, from: Addr, p: Packet| {
            let expect = vb.on_packet(7, from, p.clone());
            out.clear();
            wb.on_packet_into(7, from, p, &mut out);
            assert_eq!(out.packets(), expect);
        };

        for (addr, id) in [(1, "pub"), (2, "s0"), (3, "s1"), (4, "s2")] {
            feed(
                &mut vec_b,
                &mut wire_b,
                addr,
                Packet::Connect {
                    clean_session: true,
                    duration: 60,
                    client_id: id.into(),
                },
            );
        }
        feed(
            &mut vec_b,
            &mut wire_b,
            1,
            Packet::Register {
                topic_id: 0,
                msg_id: 1,
                topic_name: "t/eq".into(),
            },
        );
        for (addr, qos) in [
            (2, QoS::AtMostOnce),
            (3, QoS::AtLeastOnce),
            (4, QoS::ExactlyOnce),
        ] {
            feed(
                &mut vec_b,
                &mut wire_b,
                addr,
                Packet::Subscribe {
                    dup: false,
                    qos,
                    msg_id: 2,
                    topic: TopicRef::Name("t/eq".into()),
                },
            );
        }
        // A QoS 2 publish fanning out at three different effective QoS
        // levels: the wire path encodes once and patches headers.
        for msg_id in [10u16, 11] {
            feed(
                &mut vec_b,
                &mut wire_b,
                1,
                Packet::Publish {
                    dup: false,
                    qos: QoS::ExactlyOnce,
                    retain: false,
                    topic: TopicRef::Id(1),
                    msg_id,
                    payload: vec![0xAB; 100],
                },
            );
            feed(&mut vec_b, &mut wire_b, 1, Packet::PubRel { msg_id });
        }
        // Ticks retransmit the unacked QoS 1/2 forwards identically.
        let expect = vec_b.on_tick(u64::MAX / 2);
        out.clear();
        wire_b.on_tick_into(u64::MAX / 2, &mut out);
        assert_eq!(out.packets(), expect);
        assert!(!expect.is_empty(), "expected retransmissions");
        assert_eq!(wire_b.stats(), vec_b.stats());
        assert_eq!(wire_b.encode_state(), vec_b.encode_state());
    }

    #[test]
    fn datagram_path_decodes_and_counts_errors() {
        let mut b = broker();
        let mut out = BrokerOutputs::new();
        b.on_datagram_into(
            0,
            1,
            &Packet::Connect {
                clean_session: true,
                duration: 60,
                client_id: "d".into(),
            }
            .encode(),
            &mut out,
        )
        .unwrap();
        assert!(matches!(out.packets()[0].1, Packet::ConnAck { .. }));

        out.clear();
        assert!(b.on_datagram_into(0, 1, b"\xff garbage", &mut out).is_err());
        assert!(b.on_datagram_into(0, 1, &[], &mut out).is_err());
        assert_eq!(b.stats().decode_errors, 2);
        assert!(out.is_empty());

        b.note_io_errors(3);
        assert_eq!(b.stats().io_errors, 3);
    }

    #[test]
    fn datagram_batch_processes_all_frames_and_reports_errors() {
        let mut b = broker();
        connect(&mut b, 1, "pub");
        connect(&mut b, 2, "sub");
        let tid = register(&mut b, 1, "t/batch");
        subscribe(&mut b, 2, "t/batch", QoS::AtMostOnce);

        let frames: Vec<Vec<u8>> = (0..4u8)
            .map(|i| {
                Packet::Publish {
                    dup: false,
                    qos: QoS::AtMostOnce,
                    retain: false,
                    topic: TopicRef::Id(tid),
                    msg_id: 0,
                    payload: vec![i],
                }
                .encode()
            })
            .collect();
        let mut out = BrokerOutputs::new();
        let errors = b.on_datagram_batch_into(
            0,
            frames
                .iter()
                .map(|f| (1u32, f.as_slice()))
                .chain(std::iter::once((1u32, &b"junk"[..]))),
            &mut out,
        );
        assert_eq!(errors, 1);
        assert_eq!(b.stats().decode_errors, 1);
        let delivered: Vec<u8> = out
            .packets()
            .iter()
            .map(|(to, p)| {
                assert_eq!(*to, 2);
                match p {
                    Packet::Publish { payload, .. } => payload[0],
                    p => panic!("unexpected {p:?}"),
                }
            })
            .collect();
        assert_eq!(delivered, vec![0, 1, 2, 3]);
    }

    /// Fan-out to many subscribers shares one wire image: QoS 0 copies are
    /// byte-identical, QoS 1 copies differ only in the patched header.
    #[test]
    fn fanout_shares_one_wire_image_with_patched_headers() {
        let mut b = broker();
        connect(&mut b, 1, "pub");
        for addr in 2..6u32 {
            connect(&mut b, addr, &format!("s{addr}"));
        }
        let tid = register(&mut b, 1, "t/fan");
        for addr in 2..4u32 {
            subscribe(&mut b, addr, "t/fan", QoS::AtMostOnce);
        }
        // Two QoS 1 subscribers get distinct msg ids via header patches.
        for addr in 4..6u32 {
            subscribe(&mut b, addr, "t/fan", QoS::AtLeastOnce);
        }
        let mut out = BrokerOutputs::new();
        let wire = Packet::Publish {
            dup: false,
            qos: QoS::AtLeastOnce,
            retain: false,
            topic: TopicRef::Id(tid),
            msg_id: 9,
            payload: vec![0x42; 64],
        }
        .encode();
        b.on_datagram_into(0, 1, &wire, &mut out).unwrap();

        let packets = out.packets();
        // PUBACK to the publisher + 4 forwards.
        assert_eq!(packets.len(), 5);
        let mut qos1_ids = Vec::new();
        for (to, p) in &packets[1..] {
            match p {
                Packet::Publish {
                    qos: QoS::AtMostOnce,
                    msg_id: 0,
                    payload,
                    ..
                } => {
                    assert!(*to == 2 || *to == 3);
                    assert_eq!(payload, &vec![0x42; 64]);
                }
                Packet::Publish {
                    qos: QoS::AtLeastOnce,
                    msg_id,
                    payload,
                    ..
                } => {
                    assert!(*to == 4 || *to == 5);
                    assert_eq!(payload, &vec![0x42; 64]);
                    qos1_ids.push(*msg_id);
                }
                p => panic!("unexpected {p:?}"),
            }
        }
        // Message ids are allocated per subscriber session: both QoS 1
        // copies carry id 1 here, patched over the QoS 0 image's id 0.
        assert_eq!(qos1_ids, vec![1, 1]);
        // emit() is repeatable: patches restore every copy's own header.
        assert_eq!(out.packets(), packets);

        // A second publish advances each subscriber's msg id to 2,
        // proving the patch really is per-copy, not a stale shared value.
        out.clear();
        b.on_datagram_into(1, 1, &wire, &mut out).unwrap();
        let ids: Vec<u16> = out
            .packets()
            .iter()
            .filter_map(|(_, p)| match p {
                Packet::Publish {
                    qos: QoS::AtLeastOnce,
                    msg_id,
                    ..
                } => Some(*msg_id),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![2, 2]);
    }

    #[test]
    fn subscribe_to_registered_id() {
        let mut b = broker();
        connect(&mut b, 1, "pub");
        connect(&mut b, 2, "sub");
        let tid = register(&mut b, 1, "t/id");
        let out = b.on_packet(
            0,
            2,
            Packet::Subscribe {
                dup: false,
                qos: QoS::AtMostOnce,
                msg_id: 9,
                topic: TopicRef::Id(tid),
            },
        );
        assert!(matches!(
            out[0].1,
            Packet::SubAck {
                code: ReturnCode::Accepted,
                topic_id,
                ..
            } if topic_id == tid
        ));
    }

    /// A broker with tiny watermarks, a durable subscriber that went away,
    /// and a publisher flooding it.
    fn congested_broker(signal: bool) -> (Broker<Addr>, u16) {
        let mut b = Broker::new(BrokerConfig {
            congestion_soft: 2,
            congestion_hard: 4,
            signal_congestion: signal,
            ..BrokerConfig::default()
        });
        connect(&mut b, 1, "pub");
        connect_durable(&mut b, 2, "sub");
        let tid = register(&mut b, 1, "t/cong");
        subscribe(&mut b, 2, "t/cong", QoS::AtLeastOnce);
        // The subscriber goes away; everything published now buffers.
        b.on_packet(0, 2, Packet::Disconnect { duration: None });
        (b, tid)
    }

    fn publish_qos1(b: &mut Broker<Addr>, tid: u16, msg_id: u16) -> Vec<(Addr, Packet)> {
        b.on_packet(
            0,
            1,
            Packet::Publish {
                dup: false,
                qos: QoS::AtLeastOnce,
                retain: false,
                topic: TopicRef::Id(tid),
                msg_id,
                payload: vec![1],
            },
        )
    }

    #[test]
    fn congestion_advises_then_rejects_qos1() {
        let (mut b, tid) = congested_broker(true);
        let mut saw_advisory = false;
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        for i in 1..=8u16 {
            for (to, p) in publish_qos1(&mut b, tid, i) {
                assert_eq!(to, 1, "all responses go to the publisher");
                match p {
                    Packet::CongestionAdvisory { level } if level > 0 => saw_advisory = true,
                    Packet::PubAck {
                        code: ReturnCode::Accepted,
                        ..
                    } => accepted += 1,
                    Packet::PubAck {
                        code: ReturnCode::Congestion,
                        ..
                    } => rejected += 1,
                    p => panic!("unexpected {p:?}"),
                }
            }
        }
        assert!(saw_advisory, "soft watermark must raise an advisory");
        assert!(rejected > 0, "hard watermark must reject QoS 1 publishes");
        assert_eq!(b.stats().congestion_rejects as u32, rejected);
        assert!(b.stats().advisories_sent > 0);
        assert!(b.stats().backlog_high_water >= 4);
        // Exact accounting: every accepted publish is buffered, every
        // rejected one bounced — nothing vanished.
        assert_eq!(b.backlog() as u32, accepted);
        assert_eq!(accepted + rejected, 8);
    }

    #[test]
    fn congestion_clears_via_tick_advisory() {
        let (mut b, tid) = congested_broker(true);
        for i in 1..=8u16 {
            publish_qos1(&mut b, tid, i);
        }
        assert_eq!(b.congestion_level(), 2);
        // The subscriber comes back; the durable reconnect delivers its
        // backlog, and acknowledging each message drains the broker.
        let delivered = b.on_packet(
            1,
            2,
            Packet::Connect {
                clean_session: false,
                duration: 60,
                client_id: "sub".into(),
            },
        );
        for (_, p) in delivered {
            if let Packet::Publish { msg_id, .. } = p {
                b.on_packet(
                    2,
                    2,
                    Packet::PubAck {
                        topic_id: tid,
                        msg_id,
                        code: ReturnCode::Accepted,
                    },
                );
            }
        }
        assert_eq!(b.congestion_level(), 0);
        // The next tick tells the (still-advised) publisher it cleared.
        let out = b.on_tick(u64::MAX / 2);
        assert!(
            out.iter()
                .any(|(to, p)| *to == 1 && matches!(p, Packet::CongestionAdvisory { level: 0 })),
            "falling congestion must be advertised on the tick: {out:?}"
        );
    }

    #[test]
    fn signaling_disabled_restores_buffer_then_drop() {
        let (mut b, tid) = congested_broker(false);
        for i in 1..=8u16 {
            for (_, p) in publish_qos1(&mut b, tid, i) {
                assert!(
                    matches!(
                        p,
                        Packet::PubAck {
                            code: ReturnCode::Accepted,
                            ..
                        }
                    ),
                    "no advisories, no rejects with signaling off: {p:?}"
                );
            }
        }
        assert_eq!(b.stats().congestion_rejects, 0);
        assert_eq!(b.stats().advisories_sent, 0);
        // The high-water gauge still tracks, so overload is observable.
        // (Sampled on publish entry, so the 8th publish observes 7.)
        assert!(b.stats().backlog_high_water >= 7);
    }

    #[test]
    fn hard_congestion_spares_qos2_duplicates() {
        let (mut b, tid) = congested_broker(true);
        // First QoS 2 publish while clear: accepted, forwarded (buffered).
        let out = b.on_packet(
            0,
            1,
            Packet::Publish {
                dup: false,
                qos: QoS::ExactlyOnce,
                retain: false,
                topic: TopicRef::Id(tid),
                msg_id: 77,
                payload: vec![2],
            },
        );
        assert!(out
            .iter()
            .any(|(_, p)| matches!(p, Packet::PubRec { msg_id: 77 })));
        // Flood until hard congestion.
        for i in 1..=8u16 {
            publish_qos1(&mut b, tid, i);
        }
        assert_eq!(b.congestion_level(), 2);
        // A DUP retransmission of the already-forwarded QoS 2 message
        // still completes the handshake; rejecting it would trigger a
        // duplicate replay of a delivered message.
        let out = b.on_packet(
            1,
            1,
            Packet::Publish {
                dup: true,
                qos: QoS::ExactlyOnce,
                retain: false,
                topic: TopicRef::Id(tid),
                msg_id: 77,
                payload: vec![2],
            },
        );
        assert!(
            out.iter()
                .any(|(_, p)| matches!(p, Packet::PubRec { msg_id: 77 })),
            "QoS 2 dup must get PUBREC, not a congestion reject: {out:?}"
        );
        assert!(!out.iter().any(|(_, p)| matches!(
            p,
            Packet::PubAck {
                code: ReturnCode::Congestion,
                ..
            }
        )));
    }
}
