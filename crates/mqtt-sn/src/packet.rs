//! MQTT-SN v1.2 wire format.
//!
//! Every message starts with a length (1 byte, or `0x01` + 2 bytes for
//! larger messages) and a message-type byte. The tiny fixed header —
//! 7 bytes for a PUBLISH against HTTP's hundreds — is a key ingredient in
//! the paper's network-usage numbers (Fig. 6c).

use crate::Error;

/// Quality-of-service level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QoS {
    /// Fire and forget.
    #[default]
    AtMostOnce,
    /// Acknowledged delivery (PUBACK), at-least-once.
    AtLeastOnce,
    /// Assured delivery (PUBREC/PUBREL/PUBCOMP), exactly-once. The level
    /// ProvLight uses (paper Table VI).
    ExactlyOnce,
}

impl QoS {
    fn bits(self) -> u8 {
        match self {
            QoS::AtMostOnce => 0b00,
            QoS::AtLeastOnce => 0b01,
            QoS::ExactlyOnce => 0b10,
        }
    }

    fn from_bits(bits: u8) -> Result<QoS, Error> {
        match bits & 0b11 {
            0b00 => Ok(QoS::AtMostOnce),
            0b01 => Ok(QoS::AtLeastOnce),
            0b10 => Ok(QoS::ExactlyOnce),
            _ => Err(Error::Malformed("QoS -1 not supported")),
        }
    }
}

/// CONNACK / REGACK / PUBACK / SUBACK return codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReturnCode {
    /// Accepted.
    Accepted,
    /// Rejected: congestion.
    Congestion,
    /// Rejected: invalid topic id.
    InvalidTopicId,
    /// Rejected: not supported.
    NotSupported,
}

impl ReturnCode {
    fn byte(self) -> u8 {
        match self {
            ReturnCode::Accepted => 0x00,
            ReturnCode::Congestion => 0x01,
            ReturnCode::InvalidTopicId => 0x02,
            ReturnCode::NotSupported => 0x03,
        }
    }

    fn from_byte(b: u8) -> Result<Self, Error> {
        match b {
            0x00 => Ok(ReturnCode::Accepted),
            0x01 => Ok(ReturnCode::Congestion),
            0x02 => Ok(ReturnCode::InvalidTopicId),
            0x03 => Ok(ReturnCode::NotSupported),
            _ => Err(Error::Malformed("unknown return code")),
        }
    }
}

/// How a PUBLISH / SUBSCRIBE refers to its topic.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TopicRef {
    /// A previously REGISTERed (or SUBACK-assigned) 16-bit id.
    Id(u16),
    /// A predefined id agreed out of band.
    Predefined(u16),
    /// A full topic name (SUBSCRIBE only; PUBLISH always uses ids).
    Name(String),
}

impl TopicRef {
    fn type_bits(&self) -> u8 {
        match self {
            TopicRef::Id(_) => 0b00,
            TopicRef::Predefined(_) => 0b01,
            TopicRef::Name(_) => 0b10, // "short" slot reused for names in SUBSCRIBE
        }
    }
}

/// Message-type bytes (MQTT-SN v1.2 §5.2.2). Crate-visible so the
/// sharded gateway front can route on the type byte without a full
/// decode.
pub(crate) mod msg_type {
    pub const ADVERTISE: u8 = 0x00;
    pub const SEARCHGW: u8 = 0x01;
    pub const GWINFO: u8 = 0x02;
    pub const CONNECT: u8 = 0x04;
    pub const CONNACK: u8 = 0x05;
    pub const REGISTER: u8 = 0x0A;
    pub const REGACK: u8 = 0x0B;
    pub const PUBLISH: u8 = 0x0C;
    pub const PUBACK: u8 = 0x0D;
    pub const PUBCOMP: u8 = 0x0E;
    pub const PUBREC: u8 = 0x0F;
    pub const PUBREL: u8 = 0x10;
    pub const SUBSCRIBE: u8 = 0x12;
    pub const SUBACK: u8 = 0x13;
    pub const UNSUBSCRIBE: u8 = 0x14;
    pub const UNSUBACK: u8 = 0x15;
    pub const PINGREQ: u8 = 0x16;
    pub const PINGRESP: u8 = 0x17;
    pub const DISCONNECT: u8 = 0x18;
    /// Vendor extension (spec reserves 0x1A..=0xFD): broker→client
    /// congestion advisory carrying the current backpressure level.
    pub const CONGESTION: u8 = 0x1E;
}

mod flag {
    pub const DUP: u8 = 0x80;
    pub const QOS_SHIFT: u8 = 5;
    pub const QOS_MASK: u8 = 0x60;
    pub const RETAIN: u8 = 0x10;
    pub const CLEAN_SESSION: u8 = 0x04;
    pub const TOPIC_TYPE_MASK: u8 = 0x03;
}

/// A decoded MQTT-SN message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Packet {
    /// Gateway advertisement broadcast.
    Advertise {
        /// Gateway id.
        gw_id: u8,
        /// Seconds until the next ADVERTISE.
        duration: u16,
    },
    /// Gateway discovery probe.
    SearchGw {
        /// Broadcast radius.
        radius: u8,
    },
    /// Gateway discovery answer.
    GwInfo {
        /// Gateway id.
        gw_id: u8,
    },
    /// Client connection request.
    Connect {
        /// Start a clean session.
        clean_session: bool,
        /// Keep-alive period, seconds.
        duration: u16,
        /// Client identifier (1..=23 bytes per spec).
        client_id: String,
    },
    /// Connection response.
    ConnAck {
        /// Result.
        code: ReturnCode,
    },
    /// Topic-name registration (client→broker or broker→client).
    Register {
        /// Assigned id (0 when client-initiated).
        topic_id: u16,
        /// Transaction id.
        msg_id: u16,
        /// Topic name.
        topic_name: String,
    },
    /// Registration response.
    RegAck {
        /// Assigned topic id.
        topic_id: u16,
        /// Transaction id.
        msg_id: u16,
        /// Result.
        code: ReturnCode,
    },
    /// Application message.
    Publish {
        /// Retransmission flag.
        dup: bool,
        /// Delivery QoS.
        qos: QoS,
        /// Retain flag.
        retain: bool,
        /// Topic reference (id or predefined id).
        topic: TopicRef,
        /// Message id (0 for QoS 0).
        msg_id: u16,
        /// Application payload.
        payload: Vec<u8>,
    },
    /// QoS 1 acknowledgment.
    PubAck {
        /// Topic id being acknowledged.
        topic_id: u16,
        /// Message id.
        msg_id: u16,
        /// Result.
        code: ReturnCode,
    },
    /// QoS 2 step 1 (receiver got the message).
    PubRec {
        /// Message id.
        msg_id: u16,
    },
    /// QoS 2 step 2 (sender releases the message).
    PubRel {
        /// Message id.
        msg_id: u16,
    },
    /// QoS 2 step 3 (receiver completed).
    PubComp {
        /// Message id.
        msg_id: u16,
    },
    /// Subscription request.
    Subscribe {
        /// Retransmission flag.
        dup: bool,
        /// Requested QoS.
        qos: QoS,
        /// Transaction id.
        msg_id: u16,
        /// Topic (name with optional wildcards, or id).
        topic: TopicRef,
    },
    /// Subscription response.
    SubAck {
        /// Granted QoS.
        qos: QoS,
        /// Assigned topic id (0 for wildcard filters).
        topic_id: u16,
        /// Transaction id.
        msg_id: u16,
        /// Result.
        code: ReturnCode,
    },
    /// Unsubscribe request.
    Unsubscribe {
        /// Transaction id.
        msg_id: u16,
        /// Topic (name or id).
        topic: TopicRef,
    },
    /// Unsubscribe response.
    UnsubAck {
        /// Transaction id.
        msg_id: u16,
    },
    /// Keep-alive probe.
    PingReq,
    /// Keep-alive response.
    PingResp,
    /// Disconnect notification (optionally entering sleep for `duration`).
    Disconnect {
        /// Sleep duration in seconds, if going to sleep.
        duration: Option<u16>,
    },
    /// Vendor extension (type `0x1E`, from the spec's reserved range):
    /// broker→client advisory that the gateway's buffers are filling.
    /// `level` 0 means congestion cleared, 1 means soft (publishers should
    /// pace and coalesce), 2 means hard (QoS ≥ 1 publishes are being
    /// rejected with [`ReturnCode::Congestion`]). Clients that don't
    /// understand the type ignore it — advisory delivery is best-effort
    /// and never required for correctness.
    CongestionAdvisory {
        /// Current congestion level (0 = clear, 1 = soft, 2 = hard).
        level: u8,
    },
}

/// A decoded message whose PUBLISH payload borrows the datagram buffer.
///
/// The broker's per-subscriber fan-out makes PUBLISH the only message type
/// whose decode cost scales with size; [`Packet::decode_borrowed`] parses it
/// without copying the payload into an owned `Vec`, so a gateway can route a
/// datagram straight from its receive buffer to its send buffer. Every
/// other (control) message type is cold and decodes to the owned [`Packet`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PacketRef<'a> {
    /// Application message, payload borrowed from the datagram.
    Publish {
        /// Retransmission flag.
        dup: bool,
        /// Delivery QoS.
        qos: QoS,
        /// Retain flag.
        retain: bool,
        /// Topic reference (PUBLISH only carries ids, never names).
        topic: TopicRef,
        /// Message id (0 for QoS 0).
        msg_id: u16,
        /// Application payload, borrowed from the input buffer.
        payload: &'a [u8],
    },
    /// Any non-PUBLISH message, decoded owned.
    Owned(Packet),
}

impl PacketRef<'_> {
    /// Converts to an owned [`Packet`], copying the payload if borrowed.
    pub fn into_owned(self) -> Packet {
        match self {
            PacketRef::Publish {
                dup,
                qos,
                retain,
                topic,
                msg_id,
                payload,
            } => Packet::Publish {
                dup,
                qos,
                retain,
                topic,
                msg_id,
                payload: payload.to_vec(),
            },
            PacketRef::Owned(p) => p,
        }
    }
}

/// Byte positions of the patchable PUBLISH header fields inside a wire
/// buffer, as produced by [`encode_publish_into`]. When a broker fans one
/// message out to several subscribers the wire image differs only in the
/// flags byte (effective QoS) and the message id — rewriting those three
/// bytes in place replaces a full re-encode per subscriber.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PublishWire {
    /// Start of the datagram within the buffer.
    pub start: usize,
    /// One past the end of the datagram.
    pub end: usize,
    /// Absolute offset of the flags byte.
    pub flags_at: usize,
    /// Absolute offset of the big-endian message id (2 bytes).
    pub msg_id_at: usize,
}

/// The PUBLISH flags byte for the given delivery options.
pub fn publish_flags(dup: bool, qos: QoS, retain: bool, topic: &TopicRef) -> u8 {
    let mut flags = (qos.bits() << flag::QOS_SHIFT) | topic.type_bits();
    if dup {
        flags |= flag::DUP;
    }
    if retain {
        flags |= flag::RETAIN;
    }
    flags
}

/// Appends a PUBLISH wire image to `out` without materializing a
/// [`Packet`], returning the patchable field offsets. Bytes are identical
/// to encoding the equivalent [`Packet::Publish`].
pub fn encode_publish_into(
    dup: bool,
    qos: QoS,
    retain: bool,
    topic: &TopicRef,
    msg_id: u16,
    payload: &[u8],
    out: &mut Vec<u8>,
) -> PublishWire {
    let start = out.len();
    // type + flags + topic id + msg id + payload
    let body_len = 6 + payload.len();
    if body_len + 1 < 256 {
        out.push((body_len + 1) as u8);
    } else {
        out.push(0x01);
        out.extend_from_slice(&((body_len + 3) as u16).to_be_bytes());
    }
    out.push(msg_type::PUBLISH);
    let flags_at = out.len();
    out.push(publish_flags(dup, qos, retain, topic));
    match topic {
        TopicRef::Id(id) | TopicRef::Predefined(id) => push_u16(out, *id),
        TopicRef::Name(_) => push_u16(out, 0),
    }
    let msg_id_at = out.len();
    push_u16(out, msg_id);
    out.extend_from_slice(payload);
    PublishWire {
        start,
        end: out.len(),
        flags_at,
        msg_id_at,
    }
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

impl Packet {
    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        self.encode_into(&mut out);
        out
    }

    /// Serializes to wire bytes appended to `out` (not cleared), so callers
    /// can reuse one write buffer across packets instead of allocating per
    /// datagram. Bytes are identical to [`Packet::encode`].
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        // Encode the body after a 3-byte placeholder, then fix the length
        // field up in place (1-byte form shifts the body back by two).
        let start = out.len();
        out.extend_from_slice(&[0, 0, 0]);
        self.encode_body(out);
        let body_len = out.len() - start - 3;
        if body_len < 255 {
            out[start] = (body_len + 1) as u8;
            out.copy_within(start + 3.., start + 1);
            out.truncate(out.len() - 2);
        } else {
            let total = (body_len + 3) as u16;
            out[start] = 0x01;
            out[start + 1..start + 3].copy_from_slice(&total.to_be_bytes());
        }
    }

    fn encode_body(&self, b: &mut Vec<u8>) {
        match self {
            Packet::Advertise { gw_id, duration } => {
                b.push(msg_type::ADVERTISE);
                b.push(*gw_id);
                push_u16(b, *duration);
            }
            Packet::SearchGw { radius } => {
                b.push(msg_type::SEARCHGW);
                b.push(*radius);
            }
            Packet::GwInfo { gw_id } => {
                b.push(msg_type::GWINFO);
                b.push(*gw_id);
            }
            Packet::Connect {
                clean_session,
                duration,
                client_id,
            } => {
                b.push(msg_type::CONNECT);
                let mut flags = 0;
                if *clean_session {
                    flags |= flag::CLEAN_SESSION;
                }
                b.push(flags);
                b.push(0x01); // protocol id
                push_u16(b, *duration);
                b.extend_from_slice(client_id.as_bytes());
            }
            Packet::ConnAck { code } => {
                b.push(msg_type::CONNACK);
                b.push(code.byte());
            }
            Packet::Register {
                topic_id,
                msg_id,
                topic_name,
            } => {
                b.push(msg_type::REGISTER);
                push_u16(b, *topic_id);
                push_u16(b, *msg_id);
                b.extend_from_slice(topic_name.as_bytes());
            }
            Packet::RegAck {
                topic_id,
                msg_id,
                code,
            } => {
                b.push(msg_type::REGACK);
                push_u16(b, *topic_id);
                push_u16(b, *msg_id);
                b.push(code.byte());
            }
            Packet::Publish {
                dup,
                qos,
                retain,
                topic,
                msg_id,
                payload,
            } => {
                b.push(msg_type::PUBLISH);
                let mut flags = (qos.bits() << flag::QOS_SHIFT) | topic.type_bits();
                if *dup {
                    flags |= flag::DUP;
                }
                if *retain {
                    flags |= flag::RETAIN;
                }
                b.push(flags);
                match topic {
                    TopicRef::Id(id) | TopicRef::Predefined(id) => push_u16(b, *id),
                    TopicRef::Name(_) => push_u16(b, 0),
                }
                push_u16(b, *msg_id);
                b.extend_from_slice(payload);
            }
            Packet::PubAck {
                topic_id,
                msg_id,
                code,
            } => {
                b.push(msg_type::PUBACK);
                push_u16(b, *topic_id);
                push_u16(b, *msg_id);
                b.push(code.byte());
            }
            Packet::PubRec { msg_id } => {
                b.push(msg_type::PUBREC);
                push_u16(b, *msg_id);
            }
            Packet::PubRel { msg_id } => {
                b.push(msg_type::PUBREL);
                push_u16(b, *msg_id);
            }
            Packet::PubComp { msg_id } => {
                b.push(msg_type::PUBCOMP);
                push_u16(b, *msg_id);
            }
            Packet::Subscribe {
                dup,
                qos,
                msg_id,
                topic,
            } => {
                b.push(msg_type::SUBSCRIBE);
                let mut flags = (qos.bits() << flag::QOS_SHIFT) | topic.type_bits();
                if *dup {
                    flags |= flag::DUP;
                }
                b.push(flags);
                push_u16(b, *msg_id);
                match topic {
                    TopicRef::Id(id) | TopicRef::Predefined(id) => push_u16(b, *id),
                    TopicRef::Name(name) => b.extend_from_slice(name.as_bytes()),
                }
            }
            Packet::SubAck {
                qos,
                topic_id,
                msg_id,
                code,
            } => {
                b.push(msg_type::SUBACK);
                b.push(qos.bits() << flag::QOS_SHIFT);
                push_u16(b, *topic_id);
                push_u16(b, *msg_id);
                b.push(code.byte());
            }
            Packet::Unsubscribe { msg_id, topic } => {
                b.push(msg_type::UNSUBSCRIBE);
                b.push(topic.type_bits());
                push_u16(b, *msg_id);
                match topic {
                    TopicRef::Id(id) | TopicRef::Predefined(id) => push_u16(b, *id),
                    TopicRef::Name(name) => b.extend_from_slice(name.as_bytes()),
                }
            }
            Packet::UnsubAck { msg_id } => {
                b.push(msg_type::UNSUBACK);
                push_u16(b, *msg_id);
            }
            Packet::PingReq => b.push(msg_type::PINGREQ),
            Packet::PingResp => b.push(msg_type::PINGRESP),
            Packet::Disconnect { duration } => {
                b.push(msg_type::DISCONNECT);
                if let Some(d) = duration {
                    push_u16(b, *d);
                }
            }
            Packet::CongestionAdvisory { level } => {
                b.push(msg_type::CONGESTION);
                b.push(*level);
            }
        }
    }

    /// Encoded length without allocating a fresh buffer (thread-local
    /// scratch; used heavily by simulator cost accounting).
    pub fn encoded_len(&self) -> usize {
        thread_local! {
            static LEN_BUF: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        LEN_BUF.with(|cell| {
            let mut buf = cell.borrow_mut();
            buf.clear();
            self.encode_into(&mut buf);
            buf.len()
        })
    }

    /// Parses one message, borrowing the PUBLISH payload from `buf`
    /// instead of copying it. Control messages decode owned (they are
    /// small and off the hot path). Accepts and rejects exactly the same
    /// inputs as [`Packet::decode`].
    pub fn decode_borrowed(buf: &[u8]) -> Result<PacketRef<'_>, Error> {
        if buf.is_empty() {
            return Err(Error::Malformed("empty datagram"));
        }
        let (declared, header) = if buf[0] == 0x01 {
            if buf.len() < 3 {
                return Err(Error::Malformed("truncated long length"));
            }
            (u16::from_be_bytes([buf[1], buf[2]]) as usize, 3)
        } else {
            (buf[0] as usize, 1)
        };
        if declared != buf.len() {
            return Err(Error::Malformed("length mismatch"));
        }
        let body = &buf[header..];
        if body.first() != Some(&msg_type::PUBLISH) {
            return Packet::decode(buf).map(PacketRef::Owned);
        }
        let rest = &body[1..];
        if rest.len() < 5 {
            return Err(Error::Malformed("truncated body"));
        }
        let flags = rest[0];
        let qos = QoS::from_bits((flags & flag::QOS_MASK) >> flag::QOS_SHIFT)?;
        let topic_id = u16::from_be_bytes([rest[1], rest[2]]);
        let topic = match flags & flag::TOPIC_TYPE_MASK {
            0b00 => TopicRef::Id(topic_id),
            0b01 => TopicRef::Predefined(topic_id),
            _ => return Err(Error::Malformed("short topics not supported in PUBLISH")),
        };
        Ok(PacketRef::Publish {
            dup: flags & flag::DUP != 0,
            qos,
            retain: flags & flag::RETAIN != 0,
            topic,
            msg_id: u16::from_be_bytes([rest[3], rest[4]]),
            payload: &rest[5..],
        })
    }

    /// Parses one message from wire bytes. The buffer must contain exactly
    /// one datagram.
    pub fn decode(buf: &[u8]) -> Result<Packet, Error> {
        if buf.is_empty() {
            return Err(Error::Malformed("empty datagram"));
        }
        let (declared, header) = if buf[0] == 0x01 {
            if buf.len() < 3 {
                return Err(Error::Malformed("truncated long length"));
            }
            (u16::from_be_bytes([buf[1], buf[2]]) as usize, 3)
        } else {
            (buf[0] as usize, 1)
        };
        if declared != buf.len() {
            return Err(Error::Malformed("length mismatch"));
        }
        let body = &buf[header..];
        if body.is_empty() {
            return Err(Error::Malformed("missing message type"));
        }
        let ty = body[0];
        let rest = &body[1..];
        let need = |n: usize| -> Result<(), Error> {
            if rest.len() < n {
                Err(Error::Malformed("truncated body"))
            } else {
                Ok(())
            }
        };
        let u16_at = |i: usize| u16::from_be_bytes([rest[i], rest[i + 1]]);
        let str_from = |bytes: &[u8]| -> Result<String, Error> {
            std::str::from_utf8(bytes)
                .map(str::to_owned)
                .map_err(|_| Error::Malformed("invalid UTF-8"))
        };

        match ty {
            msg_type::ADVERTISE => {
                need(3)?;
                Ok(Packet::Advertise {
                    gw_id: rest[0],
                    duration: u16_at(1),
                })
            }
            msg_type::SEARCHGW => {
                need(1)?;
                Ok(Packet::SearchGw { radius: rest[0] })
            }
            msg_type::GWINFO => {
                need(1)?;
                Ok(Packet::GwInfo { gw_id: rest[0] })
            }
            msg_type::CONNECT => {
                need(4)?;
                let flags = rest[0];
                if rest[1] != 0x01 {
                    return Err(Error::Malformed("bad protocol id"));
                }
                Ok(Packet::Connect {
                    clean_session: flags & flag::CLEAN_SESSION != 0,
                    duration: u16_at(2),
                    client_id: str_from(&rest[4..])?,
                })
            }
            msg_type::CONNACK => {
                need(1)?;
                Ok(Packet::ConnAck {
                    code: ReturnCode::from_byte(rest[0])?,
                })
            }
            msg_type::REGISTER => {
                need(4)?;
                Ok(Packet::Register {
                    topic_id: u16_at(0),
                    msg_id: u16_at(2),
                    topic_name: str_from(&rest[4..])?,
                })
            }
            msg_type::REGACK => {
                need(5)?;
                Ok(Packet::RegAck {
                    topic_id: u16_at(0),
                    msg_id: u16_at(2),
                    code: ReturnCode::from_byte(rest[4])?,
                })
            }
            msg_type::PUBLISH => {
                need(5)?;
                let flags = rest[0];
                let qos = QoS::from_bits((flags & flag::QOS_MASK) >> flag::QOS_SHIFT)?;
                let topic_id = u16_at(1);
                let topic = match flags & flag::TOPIC_TYPE_MASK {
                    0b00 => TopicRef::Id(topic_id),
                    0b01 => TopicRef::Predefined(topic_id),
                    _ => return Err(Error::Malformed("short topics not supported in PUBLISH")),
                };
                Ok(Packet::Publish {
                    dup: flags & flag::DUP != 0,
                    qos,
                    retain: flags & flag::RETAIN != 0,
                    topic,
                    msg_id: u16_at(3),
                    payload: rest[5..].to_vec(),
                })
            }
            msg_type::PUBACK => {
                need(5)?;
                Ok(Packet::PubAck {
                    topic_id: u16_at(0),
                    msg_id: u16_at(2),
                    code: ReturnCode::from_byte(rest[4])?,
                })
            }
            msg_type::PUBREC => {
                need(2)?;
                Ok(Packet::PubRec { msg_id: u16_at(0) })
            }
            msg_type::PUBREL => {
                need(2)?;
                Ok(Packet::PubRel { msg_id: u16_at(0) })
            }
            msg_type::PUBCOMP => {
                need(2)?;
                Ok(Packet::PubComp { msg_id: u16_at(0) })
            }
            msg_type::SUBSCRIBE => {
                need(3)?;
                let flags = rest[0];
                let qos = QoS::from_bits((flags & flag::QOS_MASK) >> flag::QOS_SHIFT)?;
                let msg_id = u16_at(1);
                let topic = match flags & flag::TOPIC_TYPE_MASK {
                    0b00 | 0b10 => TopicRef::Name(str_from(&rest[3..])?),
                    0b01 => {
                        need(5)?;
                        TopicRef::Predefined(u16_at(3))
                    }
                    _ => return Err(Error::Malformed("bad topic type")),
                };
                Ok(Packet::Subscribe {
                    dup: flags & flag::DUP != 0,
                    qos,
                    msg_id,
                    topic,
                })
            }
            msg_type::SUBACK => {
                need(6)?;
                let qos = QoS::from_bits((rest[0] & flag::QOS_MASK) >> flag::QOS_SHIFT)?;
                Ok(Packet::SubAck {
                    qos,
                    topic_id: u16_at(1),
                    msg_id: u16_at(3),
                    code: ReturnCode::from_byte(rest[5])?,
                })
            }
            msg_type::UNSUBSCRIBE => {
                need(3)?;
                let flags = rest[0];
                let msg_id = u16_at(1);
                let topic = match flags & flag::TOPIC_TYPE_MASK {
                    0b00 | 0b10 => TopicRef::Name(str_from(&rest[3..])?),
                    0b01 => {
                        need(5)?;
                        TopicRef::Predefined(u16_at(3))
                    }
                    _ => return Err(Error::Malformed("bad topic type")),
                };
                Ok(Packet::Unsubscribe { msg_id, topic })
            }
            msg_type::UNSUBACK => {
                need(2)?;
                Ok(Packet::UnsubAck { msg_id: u16_at(0) })
            }
            msg_type::PINGREQ => Ok(Packet::PingReq),
            msg_type::PINGRESP => Ok(Packet::PingResp),
            msg_type::DISCONNECT => {
                if rest.len() >= 2 {
                    Ok(Packet::Disconnect {
                        duration: Some(u16_at(0)),
                    })
                } else {
                    Ok(Packet::Disconnect { duration: None })
                }
            }
            msg_type::CONGESTION => {
                need(1)?;
                Ok(Packet::CongestionAdvisory { level: rest[0] })
            }
            _ => Err(Error::Malformed("unknown message type")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(p: Packet) {
        let wire = p.encode();
        assert_eq!(Packet::decode(&wire).unwrap(), p, "wire: {wire:02x?}");
    }

    #[test]
    fn roundtrip_every_variant() {
        roundtrip(Packet::Advertise {
            gw_id: 1,
            duration: 900,
        });
        roundtrip(Packet::SearchGw { radius: 2 });
        roundtrip(Packet::GwInfo { gw_id: 1 });
        roundtrip(Packet::Connect {
            clean_session: true,
            duration: 60,
            client_id: "edge-device-17".into(),
        });
        roundtrip(Packet::ConnAck {
            code: ReturnCode::Accepted,
        });
        roundtrip(Packet::Register {
            topic_id: 0,
            msg_id: 7,
            topic_name: "provlight/wf1/device3".into(),
        });
        roundtrip(Packet::RegAck {
            topic_id: 12,
            msg_id: 7,
            code: ReturnCode::Accepted,
        });
        roundtrip(Packet::Publish {
            dup: false,
            qos: QoS::ExactlyOnce,
            retain: false,
            topic: TopicRef::Id(12),
            msg_id: 99,
            payload: vec![1, 2, 3, 4],
        });
        roundtrip(Packet::PubAck {
            topic_id: 12,
            msg_id: 99,
            code: ReturnCode::Accepted,
        });
        roundtrip(Packet::PubRec { msg_id: 99 });
        roundtrip(Packet::PubRel { msg_id: 99 });
        roundtrip(Packet::PubComp { msg_id: 99 });
        roundtrip(Packet::Subscribe {
            dup: false,
            qos: QoS::AtLeastOnce,
            msg_id: 3,
            topic: TopicRef::Name("provlight/+/device1".into()),
        });
        roundtrip(Packet::SubAck {
            qos: QoS::AtLeastOnce,
            topic_id: 0,
            msg_id: 3,
            code: ReturnCode::Accepted,
        });
        roundtrip(Packet::Unsubscribe {
            msg_id: 4,
            topic: TopicRef::Name("provlight/#".into()),
        });
        roundtrip(Packet::UnsubAck { msg_id: 4 });
        roundtrip(Packet::PingReq);
        roundtrip(Packet::PingResp);
        roundtrip(Packet::Disconnect { duration: None });
        roundtrip(Packet::Disconnect {
            duration: Some(300),
        });
        roundtrip(Packet::CongestionAdvisory { level: 0 });
        roundtrip(Packet::CongestionAdvisory { level: 2 });
    }

    #[test]
    fn publish_header_is_seven_bytes() {
        // The paper's Table VI contrast: MQTT-SN adds 7 bytes to a QoS 0/2
        // publish, vs. hundreds for HTTP.
        let p = Packet::Publish {
            dup: false,
            qos: QoS::ExactlyOnce,
            retain: false,
            topic: TopicRef::Id(1),
            msg_id: 1,
            payload: vec![0u8; 100],
        };
        assert_eq!(p.encoded_len(), 107);
    }

    #[test]
    fn long_payload_uses_extended_length() {
        let p = Packet::Publish {
            dup: false,
            qos: QoS::AtMostOnce,
            retain: false,
            topic: TopicRef::Id(1),
            msg_id: 0,
            payload: vec![0xaa; 1000],
        };
        let wire = p.encode();
        assert_eq!(wire[0], 0x01);
        assert_eq!(wire.len(), 1000 + 9);
        assert_eq!(Packet::decode(&wire).unwrap(), p);
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert!(Packet::decode(&[]).is_err());
        assert!(Packet::decode(&[3, 0xff, 0]).is_err()); // unknown type
        assert!(Packet::decode(&[5, 0x0c, 0]).is_err()); // declared 5, got 3
        assert!(Packet::decode(&[2, 0x05]).is_err()); // CONNACK missing code
                                                      // QoS bits 0b11 (QoS -1) rejected.
        let bad_pub = [8u8, 0x0c, 0x60, 0, 1, 0, 1, 0];
        assert!(Packet::decode(&bad_pub).is_err());
    }

    #[test]
    fn dup_and_retain_flags_roundtrip() {
        let p = Packet::Publish {
            dup: true,
            qos: QoS::AtLeastOnce,
            retain: true,
            topic: TopicRef::Predefined(5),
            msg_id: 2,
            payload: vec![],
        };
        roundtrip(p);
    }

    #[test]
    fn decode_borrowed_matches_owned_decode() {
        let publish = Packet::Publish {
            dup: true,
            qos: QoS::AtLeastOnce,
            retain: true,
            topic: TopicRef::Predefined(9),
            msg_id: 77,
            payload: vec![1, 2, 3],
        };
        let wire = publish.encode();
        match Packet::decode_borrowed(&wire).unwrap() {
            PacketRef::Publish { payload, .. } => assert_eq!(payload, &[1, 2, 3]),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            Packet::decode_borrowed(&wire).unwrap().into_owned(),
            publish
        );

        // Control traffic decodes owned, identically to Packet::decode.
        let connect = Packet::Connect {
            clean_session: false,
            duration: 30,
            client_id: "dev".into(),
        }
        .encode();
        assert_eq!(
            Packet::decode_borrowed(&connect).unwrap(),
            PacketRef::Owned(Packet::decode(&connect).unwrap())
        );

        // Rejections match too.
        assert!(Packet::decode_borrowed(&[]).is_err());
        assert!(Packet::decode_borrowed(&[5, 0x0c, 0]).is_err());
        let bad_qos = [8u8, 0x0c, 0x60, 0, 1, 0, 1, 0];
        assert!(Packet::decode_borrowed(&bad_qos).is_err());
    }

    #[test]
    fn encode_publish_into_matches_packet_encode_and_patches() {
        for payload_len in [0usize, 4, 300] {
            let payload = vec![0x5a; payload_len];
            let p = Packet::Publish {
                dup: false,
                qos: QoS::AtLeastOnce,
                retain: false,
                topic: TopicRef::Id(12),
                msg_id: 41,
                payload: payload.clone(),
            };
            let mut wire = vec![0xEE; 3]; // pre-existing bytes must be preserved
            let w = encode_publish_into(
                false,
                QoS::AtLeastOnce,
                false,
                &TopicRef::Id(12),
                41,
                &payload,
                &mut wire,
            );
            assert_eq!(w.start, 3);
            assert_eq!(&wire[w.start..w.end], p.encode().as_slice());

            // Patching flags + msg id in place yields the re-encoded form.
            let q = Packet::Publish {
                dup: false,
                qos: QoS::ExactlyOnce,
                retain: false,
                topic: TopicRef::Id(12),
                msg_id: 42,
                payload: payload.clone(),
            };
            wire[w.flags_at] = publish_flags(false, QoS::ExactlyOnce, false, &TopicRef::Id(12));
            wire[w.msg_id_at..w.msg_id_at + 2].copy_from_slice(&42u16.to_be_bytes());
            assert_eq!(&wire[w.start..w.end], q.encode().as_slice());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn prop_publish_roundtrip(
            dup: bool,
            retain: bool,
            id: u16,
            msg_id: u16,
            payload in proptest::collection::vec(any::<u8>(), 0..2048),
            qos_sel in 0u8..3,
        ) {
            let qos = match qos_sel {
                0 => QoS::AtMostOnce,
                1 => QoS::AtLeastOnce,
                _ => QoS::ExactlyOnce,
            };
            let p = Packet::Publish {
                dup, qos, retain,
                topic: TopicRef::Id(id),
                msg_id,
                payload,
            };
            let wire = p.encode();
            prop_assert_eq!(Packet::decode(&wire).unwrap(), p);
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = Packet::decode(&bytes);
        }

        #[test]
        fn prop_decode_borrowed_equivalent(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            match (Packet::decode(&bytes), Packet::decode_borrowed(&bytes)) {
                (Ok(p), Ok(r)) => prop_assert_eq!(p, r.into_owned()),
                (Err(_), Err(_)) => {}
                (p, r) => prop_assert!(false, "accept/reject divergence: {p:?} vs {r:?}"),
            }
        }

        #[test]
        fn prop_connect_roundtrip(clean: bool, duration: u16, id in "[a-zA-Z0-9_-]{1,23}") {
            let p = Packet::Connect { clean_session: clean, duration, client_id: id };
            let wire = p.encode();
            prop_assert_eq!(Packet::decode(&wire).unwrap(), p);
        }
    }
}
