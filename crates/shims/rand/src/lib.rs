//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the `rand` 0.8 API the workspace uses —
//! `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_bool`, `Rng::gen_range` —
//! over a deterministic xoshiro256** generator seeded via splitmix64. All
//! simulation callers seed explicitly, so determinism is a feature here:
//! results are reproducible across runs and platforms.

use std::ops::Range;

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution in real `rand`).
pub trait SampleUniform: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniform for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl SampleUniform for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl SampleUniform for u16 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl SampleUniform for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl SampleUniform for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl SampleUniform for i64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl SampleUniform for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl SampleUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl SampleUniform for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Core RNG interface.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T` (e.g. `rng.gen::<f64>()` in `[0, 1)`).
    fn gen<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Uniform integer in `[range.start, range.end)`.
    fn gen_range(&mut self, range: Range<u64>) -> u64
    where
        Self: Sized,
    {
        let span = range.end.saturating_sub(range.start).max(1);
        range.start + self.next_u64() % span
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_stays_in_unit_interval_and_varies() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
