//! No-op derive macros standing in for `serde_derive`.
//!
//! `#[derive(Serialize, Deserialize)]` annotations in the workspace are
//! forward declarations only; these derives expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing — see the crate docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing — see the crate docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
