//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API surface the
//! workspace uses: non-poisoning `lock()` / `read()` / `write()` that return
//! guards directly. Poisoned locks are recovered rather than propagated,
//! matching `parking_lot`'s no-poisoning semantics.
//!
//! # Lock-order tracking
//!
//! In debug builds (`debug_assertions`), locks constructed with
//! [`Mutex::with_rank`] / [`RwLock::with_rank`] participate in a per-thread
//! acquisition-order check mirroring the static hierarchy `provlight-lint`
//! enforces from `lints.toml`. A thread must acquire ranked locks in
//! strictly ascending rank order; equal ranks (sibling shards) are allowed
//! in ascending address order only, which permits ordered sweeps while
//! still catching ABBA inversions between siblings. Violations panic at the
//! acquisition site — before the lock is taken, so the would-be deadlock is
//! reported instead of hung. Locks built with `new()` are unranked and
//! exempt. Release builds compile all of this away.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// Rank given to locks that opt out of order checking.
const UNRANKED: u32 = u32::MAX;

/// Lock ranks mirroring the `[lock_order]` hierarchy in `lints.toml`,
/// outermost first. Keep the two lists in sync: the static lint checks
/// source order by receiver name, this module checks runtime order by rank.
pub mod rank {
    /// Sharded-gateway routing table (`mqtt-sn::router`): shared topic
    /// registry + topic→shard-mask cache. Acquired (and released) by a
    /// shard's serve loop *before* its broker lock, never inside it.
    pub const ROUTER: u32 = 0;
    /// Gateway broker state (`mqtt-sn`); in a sharded gateway every
    /// per-shard broker lock shares this rank and siblings are swept in
    /// ascending address order.
    pub const BROKER: u32 = 1;
    /// Server-side translator (`core::server`, `continuum`).
    pub const TRANSLATOR: u32 = 2;
    /// Legacy single-store handle (`prov-store::store`).
    pub const STORE: u32 = 3;
    /// One shard of a `ShardedStore`; siblings share the rank and are
    /// ordered by address.
    pub const SHARD: u32 = 4;
    /// Capture-side record grouper (`core::client`).
    pub const GROUPER: u32 = 5;
    /// Transmitter batch pool (`core::transmitter`).
    pub const POOL: u32 = 6;
}

#[cfg(debug_assertions)]
mod order {
    use std::cell::RefCell;

    thread_local! {
        /// `(lock address, rank)` for every ranked lock this thread holds.
        static HELD: RefCell<Vec<(usize, u32)>> = const { RefCell::new(Vec::new()) };
    }

    /// RAII registration of one held ranked lock; dropping it pops the
    /// entry.
    #[derive(Debug)]
    pub(crate) struct Held {
        addr: usize,
        tracked: bool,
    }

    pub(crate) fn acquire(addr: usize, rank: u32) -> Held {
        if rank == super::UNRANKED {
            return Held {
                addr,
                tracked: false,
            };
        }
        // `try_with` so guards living inside other thread-local destructors
        // degrade to untracked instead of aborting at thread teardown.
        let tracked = HELD
            .try_with(|held| {
                let mut held = held.borrow_mut();
                if let Some(&(worst_addr, worst_rank)) = held.iter().max_by_key(|&&(a, r)| (r, a)) {
                    let ok = rank > worst_rank || (rank == worst_rank && addr > worst_addr);
                    assert!(
                        ok,
                        "lock-order violation: acquiring rank {rank} (lock {addr:#x}) while \
                         holding rank {worst_rank} (lock {worst_addr:#x}); ranks must ascend \
                         (outermost lock first), equal ranks in ascending address order — \
                         see the [lock_order] hierarchy in lints.toml"
                    );
                }
                held.push((addr, rank));
            })
            .is_ok();
        Held { addr, tracked }
    }

    impl Drop for Held {
        fn drop(&mut self) {
            if !self.tracked {
                return;
            }
            let _ = HELD.try_with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&(a, _)| a == self.addr) {
                    held.remove(pos);
                }
            });
        }
    }
}

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    rank: u32,
    inner: sync::Mutex<T>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> Mutex<T> {
    /// Creates a new, unranked mutex (exempt from order checking).
    pub const fn new(value: T) -> Self {
        Mutex::with_rank(UNRANKED, value)
    }

    /// Creates a mutex participating in debug-build lock-order checking at
    /// `rank` (see [`rank`]).
    pub const fn with_rank(rank: u32, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = rank;
        Mutex {
            #[cfg(debug_assertions)]
            rank,
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let held = order::acquire(self as *const Self as *const () as usize, self.rank);
        MutexGuard {
            #[cfg(debug_assertions)]
            _held: held,
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Tries to acquire the lock without blocking. A successful `try_lock`
    /// registers (and order-checks) like a blocking acquisition: it cannot
    /// itself deadlock, but a misordered one is still a hierarchy bug, and
    /// later blocking acquisitions must be validated against it.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            #[cfg(debug_assertions)]
            _held: order::acquire(self as *const Self as *const () as usize, self.rank),
            inner,
        })
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    rank: u32,
    inner: sync::RwLock<T>,
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> RwLock<T> {
    /// Creates a new, unranked lock (exempt from order checking).
    pub const fn new(value: T) -> Self {
        RwLock::with_rank(UNRANKED, value)
    }

    /// Creates a lock participating in debug-build lock-order checking at
    /// `rank` (see [`rank`]).
    pub const fn with_rank(rank: u32, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = rank;
        RwLock {
            #[cfg(debug_assertions)]
            rank,
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let held = order::acquire(self as *const Self as *const () as usize, self.rank);
        RwLockReadGuard {
            #[cfg(debug_assertions)]
            _held: held,
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let held = order::acquire(self as *const Self as *const () as usize, self.rank);
        RwLockWriteGuard {
            #[cfg(debug_assertions)]
            _held: held,
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

macro_rules! guard {
    ($name:ident, mutable: $mutable:tt) => {
        /// Guard wrapping the `std::sync` guard of the same name, carrying
        /// the debug-build lock-order registration.
        pub struct $name<'a, T: ?Sized> {
            #[cfg(debug_assertions)]
            _held: order::Held,
            inner: sync::$name<'a, T>,
        }

        impl<T: ?Sized> Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                &self.inner
            }
        }

        guard!(@mut $mutable, $name);

        impl<T: ?Sized + fmt::Debug> fmt::Debug for $name<'_, T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                (**self).fmt(f)
            }
        }

        impl<T: ?Sized + fmt::Display> fmt::Display for $name<'_, T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                (**self).fmt(f)
            }
        }
    };
    (@mut true, $name:ident) => {
        impl<T: ?Sized> DerefMut for $name<'_, T> {
            fn deref_mut(&mut self) -> &mut T {
                &mut self.inner
            }
        }
    };
    (@mut false, $name:ident) => {};
}

guard!(MutexGuard, mutable: true);
guard!(RwLockReadGuard, mutable: false);
guard!(RwLockWriteGuard, mutable: true);

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn ascending_rank_order_is_allowed() {
        let outer = Mutex::with_rank(rank::BROKER, ());
        let mid = RwLock::with_rank(rank::STORE, ());
        let inner = Mutex::with_rank(rank::POOL, ());
        let _a = outer.lock();
        let _b = mid.read();
        let _c = inner.lock();
    }

    #[test]
    fn descending_rank_order_panics_in_debug() {
        let outer = Mutex::with_rank(rank::STORE, ());
        let inner = Mutex::with_rank(rank::BROKER, ());
        let _g = outer.lock();
        let result = catch_unwind(AssertUnwindSafe(|| drop(inner.lock())));
        assert_eq!(
            result.is_err(),
            cfg!(debug_assertions),
            "descending-rank acquisition must panic exactly in debug builds"
        );
    }

    #[test]
    fn equal_rank_follows_address_order() {
        let locks = [
            RwLock::with_rank(rank::SHARD, ()),
            RwLock::with_rank(rank::SHARD, ()),
        ];
        // Arrays are address-ordered, so an index sweep is the legal order.
        let lo = locks[0].read();
        let hi = locks[1].read();
        drop(hi);
        drop(lo);

        let _hi = locks[1].read();
        let result = catch_unwind(AssertUnwindSafe(|| drop(locks[0].read())));
        assert_eq!(
            result.is_err(),
            cfg!(debug_assertions),
            "descending-address sibling acquisition must panic exactly in debug builds"
        );
    }

    #[test]
    fn tracker_pops_on_guard_drop() {
        let inner = Mutex::with_rank(rank::POOL, ());
        let outer = Mutex::with_rank(rank::BROKER, ());
        drop(inner.lock());
        // With the stack popped, the outer (lower-rank) lock is legal again.
        drop(outer.lock());
        drop(inner.lock());
    }

    #[test]
    fn unranked_locks_are_exempt() {
        let ranked = Mutex::with_rank(rank::POOL, ());
        let unranked = Mutex::new(());
        let _g = ranked.lock();
        // Acquiring an unranked lock under a ranked one never trips.
        drop(unranked.lock());
    }
}
