//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface `benches/micro.rs` uses — benchmark groups,
//! `iter` / `iter_batched`, throughput annotation, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! warmup-then-measure timing loop printing ns/iter and derived throughput.
//! No statistical analysis, HTML reports, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hint for [`Bencher::iter_batched`]; accepted and ignored.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Passed to benchmark closures; drives the timing loop.
pub struct Bencher<'a> {
    measurement: Duration,
    result_ns: &'a mut f64,
}

impl Bencher<'_> {
    /// Times `routine` over a warmup + measurement loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: let caches and allocator reach steady state.
        let warm_until = Instant::now() + self.measurement / 10;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement {
            for _ in 0..16 {
                black_box(routine());
            }
            iters += 16;
        }
        *self.result_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Times `routine` with a fresh `setup()` product per iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.measurement / 10;
        while Instant::now() < warm_until {
            black_box(routine(setup()));
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        while measured < self.measurement {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        *self.result_ns = measured.as_nanos() as f64 / iters as f64;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotates per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut ns = f64::NAN;
        f(&mut Bencher {
            measurement: self.measurement,
            result_ns: &mut ns,
        });
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) if ns > 0.0 => {
                format!("  {:>10.1} MiB/s", b as f64 / ns * 1e9 / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(e)) if ns > 0.0 => {
                format!("  {:>10.0} elem/s", e as f64 / ns * 1e9)
            }
            _ => String::new(),
        };
        println!("{}/{:<32} {:>12.1} ns/iter{}", self.name, name, ns, rate);
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement: Duration::from_millis(500),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside a group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
