//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive` / `boxed`, `any::<T>()`, ranges and `&str`
//! character-class patterns as strategies, `collection::vec`, tuple
//! composition, `prop_oneof!`, and the `proptest!` test macro.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — failures report the generated inputs via the panic
//!   message of the inner assertion instead of a minimized counterexample;
//! * deterministic seeding per test name, so CI failures reproduce locally;
//! * `&str` strategies support the character-class subset actually used
//!   (`[a-z0-9_]{m,n}` sequences), not full regex.

use std::rc::Rc;

/// Deterministic test RNG (xorshift64*).
pub mod test_runner {
    /// Small deterministic RNG driving all generation.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from a test name so every test gets a distinct stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h | 1)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Run-time configuration (`cases` is the iteration count).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` iterations.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 96 }
        }
    }
}

/// Uniform generation of primitive values (the `Standard` distribution).
pub mod arbitrary {
    use crate::test_runner::TestRng;

    /// Types `any::<T>()` can produce.
    pub trait Arbitrary: Sized {
        /// Generates one value, biased toward edge cases.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // 1-in-8 edge case keeps boundary values well represented.
                    if rng.below(8) == 0 {
                        const EDGES: [$t; 4] = [0 as $t, 1 as $t, <$t>::MIN, <$t>::MAX];
                        EDGES[rng.below(EDGES.len())]
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            match rng.below(8) {
                0 => f64::from_bits(rng.next_u64()), // may be NaN/inf/subnormal
                1 => 0.0,
                2 => -1.0,
                _ => {
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    (unit - 0.5) * 2e6
                }
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::arbitrary(rng) as f32
        }
    }
}

/// The strategy trait and combinators.
pub mod strategy {
    use super::Rc;
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Discards values failing `pred`, regenerating (bounded retries).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Builds recursive structures by applying `expand` up to `depth`
        /// times over the base strategy.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _size: u32,
            _branch: u32,
            expand: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            Recursive {
                base: self.boxed(),
                expand: Rc::new(move |b| expand(b).boxed()),
                depth,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe view used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter retries exhausted: {}", self.reason);
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        expand: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        depth: u32,
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive {
                base: self.base.clone(),
                expand: Rc::clone(&self.expand),
                depth: self.depth,
            }
        }
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            // Vary the nesting depth per value so leaves stay common.
            let depth = rng.below(self.depth as usize + 1) as u32;
            let mut strat = self.base.clone();
            for _ in 0..depth {
                strat = (self.expand)(strat);
            }
            strat.generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds from the macro-collected arms; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// `any::<T>()` — arbitrary value of a primitive type.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(std::marker::PhantomData)
        }
    }

    /// Creates the [`Any`] strategy for `T`.
    pub fn any<T: crate::arbitrary::Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<i64> {
        type Value = i64;
        fn generate(&self, rng: &mut TestRng) -> i64 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end.wrapping_sub(self.start) as u64;
            self.start.wrapping_add((rng.next_u64() % span) as i64)
        }
    }

    /// Character-class pattern strategies: `"[a-z0-9_]{1,12}"` and friends.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let bytes = pattern.as_bytes();
        let mut out = String::new();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'[' {
                let close = pattern[i..]
                    .find(']')
                    .map(|o| i + o)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let class = expand_class(&pattern[i + 1..close]);
                i = close + 1;
                let (min, max, used) = parse_quantifier(&pattern[i..]);
                i += used;
                let n = if max > min {
                    min + rng.below(max - min + 1)
                } else {
                    min
                };
                for _ in 0..n {
                    out.push(class[rng.below(class.len())]);
                }
            } else {
                // Literal character.
                let c = pattern[i..].chars().next().unwrap();
                out.push(c);
                i += c.len_utf8();
            }
        }
        out
    }

    fn expand_class(spec: &str) -> Vec<char> {
        let cs: Vec<char> = spec.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                for c in cs[i]..=cs[i + 2] {
                    out.push(c);
                }
                i += 3;
            } else {
                out.push(cs[i]);
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty character class");
        out
    }

    /// Returns (min, max, bytes consumed) for a trailing quantifier.
    fn parse_quantifier(rest: &str) -> (usize, usize, usize) {
        let bytes = rest.as_bytes();
        match bytes.first() {
            Some(b'{') => {
                let close = rest.find('}').expect("unclosed quantifier");
                let inner = &rest[1..close];
                let (min, max) = match inner.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("bad quantifier"),
                        hi.parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = inner.parse().expect("bad quantifier");
                        (n, n)
                    }
                };
                (min, max, close + 1)
            }
            Some(b'*') => (0, 8, 1),
            Some(b'+') => (1, 8, 1),
            Some(b'?') => (0, 1, 1),
            _ => (1, 1, 0),
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end.max(r.start + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min;
            let n = self.size.min + if span > 0 { rng.below(span) } else { 0 };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a property test module imports.
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice among strategy arms (all arms must yield the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assertion macros — plain asserts (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the rest of the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// The property-test harness macro.
///
/// Supports the standard forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn roundtrip(v: u64, data in collection::vec(any::<u8>(), 0..64)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $crate::__proptest_bind!{ __rng; $body; $($args)* }
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; $body:block;) => { $body };
    ($rng:ident; $body:block; $name:ident : $ty:ty) => {{
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!{ $rng; $body; }
    }};
    ($rng:ident; $body:block; $name:ident : $ty:ty, $($rest:tt)*) => {{
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!{ $rng; $body; $($rest)* }
    }};
    ($rng:ident; $body:block; $pat:pat in $strat:expr) => {{
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!{ $rng; $body; }
    }};
    ($rng:ident; $body:block; $pat:pat in $strat:expr, $($rest:tt)*) => {{
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!{ $rng; $body; $($rest)* }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_strategies_respect_class_and_length() {
        let mut rng = TestRng::from_name("pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z0-9_]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn union_and_ranges_cover_arms() {
        let strat = prop_oneof![(0u64..10).prop_map(|v| v as i64), Just(-1i64)];
        let mut rng = TestRng::from_name("union");
        let vals: Vec<i64> = (0..100).map(|_| strat.generate(&mut rng)).collect();
        assert!(vals.contains(&-1));
        assert!(vals.iter().any(|v| (0..10).contains(v)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_typed_and_strategy_args(
            flag: bool,
            n in 1usize..5,
            items in collection::vec(any::<u8>(), 0..4),
        ) {
            let _ = flag;
            prop_assert!((1..5).contains(&n));
            prop_assert!(items.len() < 4);
        }
    }
}
