//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::channel` MPSC surface the transmitter uses,
//! backed by `std::sync::mpsc`. Semantics match where it matters: `bounded`
//! channels block senders when full, receivers support timeouts and
//! non-blocking polls, and dropping all senders disconnects the receiver.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of a bounded channel (clonable).
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the value is enqueued (or the receiver is gone).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }

        /// Non-blocking send; fails when the channel is full or closed.
        pub fn try_send(&self, value: T) -> Result<(), mpsc::TrySendError<T>> {
            self.0.try_send(value)
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking poll.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_roundtrip_and_timeout() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert!(tx.try_send(3).is_err());
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.try_recv().unwrap(), 2);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
