//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::channel` MPSC surface the transmitter uses,
//! backed by `std::sync::mpsc`, and a lock-free bounded `queue::ArrayQueue`
//! (Vyukov sequence-ring design) that backs the sharded gateway's
//! cross-shard forwarding rings. Semantics match where it matters: `bounded`
//! channels block senders when full, receivers support timeouts and
//! non-blocking polls, and dropping all senders disconnects the receiver;
//! `ArrayQueue` never blocks and never allocates after construction.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of a bounded channel (clonable).
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the value is enqueued (or the receiver is gone).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }

        /// Non-blocking send; fails when the channel is full or closed.
        pub fn try_send(&self, value: T) -> Result<(), mpsc::TrySendError<T>> {
            self.0.try_send(value)
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking poll.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_roundtrip_and_timeout() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert!(tx.try_send(3).is_err());
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.try_recv().unwrap(), 2);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}

pub mod queue {
    //! Lock-free bounded queues.
    //!
    //! [`ArrayQueue`] is the classic Vyukov bounded queue: a fixed slot
    //! array where each slot carries a sequence counter that encodes whose
    //! turn it is (producer or consumer) for the current lap. Push and pop
    //! are single-CAS operations with no locks, no spinning under
    //! contention beyond the CAS retry, and — critically for the gateway's
    //! zero-alloc forwarding path — no heap allocation after construction.
    //! It is MPMC-safe, which the SPSC forwarding rings use as a strictly
    //! stronger guarantee.

    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Slot<T> {
        /// Lap sequencing: `seq == index` means free for the producer of
        /// that ticket, `seq == index + 1` means filled for its consumer.
        seq: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// A bounded lock-free MPMC queue over a fixed slot array.
    pub struct ArrayQueue<T> {
        head: AtomicUsize,
        tail: AtomicUsize,
        slots: Box<[Slot<T>]>,
    }

    // Safety: values move through slots guarded by the per-slot sequence
    // protocol; a slot's value is only touched by the thread that won the
    // head/tail CAS for that ticket.
    unsafe impl<T: Send> Send for ArrayQueue<T> {}
    unsafe impl<T: Send> Sync for ArrayQueue<T> {}

    impl<T> std::fmt::Debug for ArrayQueue<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("ArrayQueue")
                .field("capacity", &self.capacity())
                .field("len", &self.len())
                .finish()
        }
    }

    impl<T> ArrayQueue<T> {
        /// Creates a queue holding up to `cap` elements. A zero `cap` is
        /// rounded up to one so `push` has a well-defined full state.
        pub fn new(cap: usize) -> Self {
            let cap = cap.max(1);
            let mut slots = Vec::with_capacity(cap);
            for i in 0..cap {
                slots.push(Slot {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                });
            }
            ArrayQueue {
                head: AtomicUsize::new(0),
                tail: AtomicUsize::new(0),
                slots: slots.into_boxed_slice(),
            }
        }

        /// Number of slots.
        pub fn capacity(&self) -> usize {
            self.slots.len()
        }

        /// Snapshot of the current occupancy. Exact only when quiescent;
        /// racing pushes/pops can skew it by the number of in-flight
        /// operations, which is fine for its use as a high-water gauge.
        pub fn len(&self) -> usize {
            let tail = self.tail.load(Ordering::Relaxed);
            let head = self.head.load(Ordering::Relaxed);
            tail.saturating_sub(head)
        }

        /// True when a `len()` snapshot reads zero.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// True when a `len()` snapshot reads `capacity()`.
        pub fn is_full(&self) -> bool {
            self.len() >= self.capacity()
        }

        /// Attempts to enqueue; returns the value back when the queue is
        /// full. Never blocks and never allocates.
        pub fn push(&self, value: T) -> Result<(), T> {
            let cap = self.slots.len();
            let mut tail = self.tail.load(Ordering::Relaxed);
            loop {
                let slot = &self.slots[tail % cap];
                let seq = slot.seq.load(Ordering::Acquire);
                if seq == tail {
                    match self.tail.compare_exchange_weak(
                        tail,
                        tail.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // Safety: winning the CAS for ticket `tail`
                            // grants exclusive write access to this slot.
                            unsafe { (*slot.value.get()).write(value) };
                            slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                            return Ok(());
                        }
                        Err(current) => tail = current,
                    }
                } else if seq < tail {
                    // One full lap behind: the slot still holds the value
                    // from `cap` tickets ago, so the queue is full.
                    return Err(value);
                } else {
                    tail = self.tail.load(Ordering::Relaxed);
                }
            }
        }

        /// Attempts to dequeue; `None` when empty. Never blocks and never
        /// allocates.
        pub fn pop(&self) -> Option<T> {
            let cap = self.slots.len();
            let mut head = self.head.load(Ordering::Relaxed);
            loop {
                let slot = &self.slots[head % cap];
                let seq = slot.seq.load(Ordering::Acquire);
                let expected = head.wrapping_add(1);
                if seq == expected {
                    match self.head.compare_exchange_weak(
                        head,
                        head.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // Safety: winning the CAS for ticket `head`
                            // grants exclusive read access to this slot's
                            // initialized value.
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            slot.seq.store(head.wrapping_add(cap), Ordering::Release);
                            return Some(value);
                        }
                        Err(current) => head = current,
                    }
                } else if seq < expected {
                    // Slot not yet filled for this lap: queue is empty.
                    return None;
                } else {
                    head = self.head.load(Ordering::Relaxed);
                }
            }
        }
    }

    impl<T> Drop for ArrayQueue<T> {
        fn drop(&mut self) {
            while self.pop().is_some() {}
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Arc;

        #[test]
        fn fifo_within_capacity_and_full_empty_edges() {
            let q = ArrayQueue::new(3);
            assert!(q.is_empty());
            assert_eq!(q.capacity(), 3);
            assert_eq!(q.push(1), Ok(()));
            assert_eq!(q.push(2), Ok(()));
            assert_eq!(q.push(3), Ok(()));
            assert!(q.is_full());
            assert_eq!(q.push(4), Err(4));
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.push(4), Ok(()));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), Some(3));
            assert_eq!(q.pop(), Some(4));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }

        #[test]
        fn wraps_many_laps_without_corruption() {
            let q = ArrayQueue::new(4);
            for lap in 0u64..1000 {
                for i in 0..4 {
                    assert_eq!(q.push(lap * 4 + i), Ok(()));
                }
                for i in 0..4 {
                    assert_eq!(q.pop(), Some(lap * 4 + i));
                }
            }
        }

        #[test]
        fn drops_queued_values_exactly_once() {
            let marker = Arc::new(());
            let q = ArrayQueue::new(8);
            for _ in 0..5 {
                q.push(Arc::clone(&marker)).map_err(|_| ()).unwrap();
            }
            assert_eq!(Arc::strong_count(&marker), 6);
            drop(q.pop());
            assert_eq!(Arc::strong_count(&marker), 5);
            drop(q);
            assert_eq!(Arc::strong_count(&marker), 1);
        }

        #[test]
        fn spsc_threads_preserve_order_under_backpressure() {
            let q = Arc::new(ArrayQueue::new(8));
            let total = 20_000u64;
            let producer = {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..total {
                        let mut v = i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            };
            let mut expected = 0u64;
            while expected < total {
                match q.pop() {
                    Some(v) => {
                        assert_eq!(v, expected);
                        expected += 1;
                    }
                    None => std::thread::yield_now(),
                }
            }
            producer.join().unwrap();
            assert!(q.is_empty());
        }

        #[test]
        fn mpmc_accounts_for_every_element() {
            let q = Arc::new(ArrayQueue::new(16));
            let per_producer = 5_000u64;
            let producers: Vec<_> = (0..3u64)
                .map(|p| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..per_producer {
                            let mut v = p * per_producer + i;
                            loop {
                                match q.push(v) {
                                    Ok(()) => break,
                                    Err(back) => {
                                        v = back;
                                        std::thread::yield_now();
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        let mut seen = Vec::new();
                        let mut idle = 0;
                        while idle < 10_000 {
                            match q.pop() {
                                Some(v) => {
                                    seen.push(v);
                                    idle = 0;
                                }
                                None => {
                                    idle += 1;
                                    std::thread::yield_now();
                                }
                            }
                        }
                        seen
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            let mut all: Vec<u64> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            let expected: Vec<u64> = (0..3 * per_producer).collect();
            assert_eq!(all, expected);
        }
    }
}
