//! Offline stand-in for the `serde` crate.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as forward
//! declarations — nothing serializes through serde at runtime (the wire
//! formats are the hand-rolled binary codec and JSON writer in
//! `prov_codec`). This shim supplies marker traits plus no-op derive macros
//! so the annotations compile without registry access.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
