//! Cross-file drift checks: stats counters vs. test assertions, bench
//! metrics vs. gate floors, `STATE_VERSION` vs. migration tests.
//!
//! These rules exist because the repo's invariants live in *pairs* of
//! places — a counter and its assertion, a metric and its floor, a version
//! constant and its migration test — and runtime testing cannot notice when
//! one half of a pair is added without the other.

use crate::config::{Config, Waiver};
use crate::lexer::{line_of, Scan};
use crate::rules::Violation;

/// One scanned workspace file, root-relative.
pub struct FileScan {
    pub rel: String,
    pub src: String,
    pub scan: Scan,
}

impl FileScan {
    /// Whether the whole file is test code (an integration-test or bench
    /// tree), as opposed to a production file with embedded test regions.
    fn is_test_file(&self) -> bool {
        self.rel.starts_with("tests/")
            || self.rel.contains("/tests/")
            || self.rel.starts_with("benches/")
            || self.rel.contains("/benches/")
    }
}

/// The concatenated masked text of all test code in the workspace.
fn test_corpus(files: &[FileScan]) -> String {
    let mut corpus = String::new();
    for f in files {
        if f.is_test_file() {
            corpus.push_str(&f.scan.masked);
            corpus.push('\n');
        } else {
            for r in &f.scan.test_regions {
                corpus.push_str(&f.scan.masked[r.clone()]);
                corpus.push('\n');
            }
        }
    }
    corpus
}

fn waived(waivers: &[Waiver], key: &str) -> Option<String> {
    waivers
        .iter()
        .find(|w| w.key == key)
        .map(|w| w.reason.clone())
}

/// Whether `token` occurs in `haystack` with non-identifier characters on
/// both sides.
fn has_token(haystack: &str, token: &str) -> bool {
    let mut search = 0;
    while let Some(pos) = haystack[search..].find(token) {
        let at = search + pos;
        search = at + token.len();
        // A `.field` probe is anchored by its own dot; bare tokens need a
        // non-identifier character before them.
        let before_ok = token.starts_with('.') || at == 0 || {
            let b = haystack.as_bytes()[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let after_ok = haystack
            .as_bytes()
            .get(at + token.len())
            .is_none_or(|&b| !(b.is_ascii_alphanumeric() || b == b'_'));
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// `drift-stats`: every `pub` field of the configured `*Stats` structs must
/// be read somewhere in test code (`.field` access), or carry a
/// `Struct.field` waiver in `lints.toml`.
pub fn stats(cfg: &Config, files: &[FileScan], out: &mut Vec<Violation>) {
    if cfg.stats_structs.is_empty() {
        return;
    }
    let corpus = test_corpus(files);
    for name in &cfg.stats_structs {
        let needle = format!("struct {name}");
        let Some((file, def_at)) = files.iter().find_map(|f| {
            let mut search = 0;
            while let Some(pos) = f.scan.masked[search..].find(&needle) {
                let at = search + pos;
                search = at + needle.len();
                // Word boundary after the name (`struct BrokerStatsExt`
                // must not match `BrokerStats`).
                let after = f.scan.masked.as_bytes().get(at + needle.len());
                if after.is_none_or(|&b| !(b.is_ascii_alphanumeric() || b == b'_')) {
                    return Some((f, at));
                }
            }
            None
        }) else {
            out.push(Violation {
                rule: "drift-stats",
                file: "lints.toml".to_owned(),
                line: 0,
                message: format!("configured stats struct `{name}` not found in the workspace"),
                waived: None,
            });
            continue;
        };
        let masked = &file.scan.masked;
        let Some(body_open) = masked[def_at..].find('{').map(|p| def_at + p) else {
            continue;
        };
        let body_end = crate::lexer::matching(masked.as_bytes(), body_open, b'{', b'}')
            .unwrap_or(masked.len());
        let body = &masked[body_open..body_end];
        for (field, field_at) in pub_fields(body) {
            let probe = format!(".{field}");
            if has_token(&corpus, &probe) {
                continue;
            }
            let key = format!("{name}.{field}");
            let line = line_of(&file.src, body_open + field_at);
            out.push(Violation {
                rule: "drift-stats",
                file: file.rel.clone(),
                line,
                message: format!("counter `{key}` is never asserted in any test"),
                waived: waived(&cfg.waive_stats, &key),
            });
        }
    }
}

/// Extracts `(field name, offset in body)` for each `pub <ident>:` field.
fn pub_fields(body: &str) -> Vec<(String, usize)> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut search = 0;
    while let Some(pos) = body[search..].find("pub ") {
        let at = search + pos;
        search = at + 4;
        if at > 0 {
            let prev = bytes[at - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                continue;
            }
        }
        let rest = &body[at + 4..];
        let name: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        let after = rest.trim_start()[name.len()..].trim_start();
        if after.starts_with(':') {
            out.push((name, at));
        }
    }
    out
}

/// `drift-bench`: every gate-worthy metric key in the tracked bench JSON
/// must have a floor in the `FLOORS` table or a dotted-path waiver.
pub fn bench(cfg: &Config, root: &std::path::Path, files: &[FileScan], out: &mut Vec<Violation>) {
    let (Some(json_rel), Some(floors_rel)) = (&cfg.bench_json, &cfg.bench_floors) else {
        return;
    };
    let Ok(json) = std::fs::read_to_string(root.join(json_rel)) else {
        // A missing bench file is not drift — fresh checkouts have none.
        return;
    };
    let floors_src = files
        .iter()
        .find(|f| &f.rel == floors_rel)
        .map(|f| f.src.clone())
        .or_else(|| std::fs::read_to_string(root.join(floors_rel)).ok());
    let Some(floors_src) = floors_src else {
        out.push(Violation {
            rule: "drift-bench",
            file: "lints.toml".to_owned(),
            line: 0,
            message: format!("bench_floors file `{floors_rel}` not found"),
            waived: None,
        });
        return;
    };
    let floors = floor_paths(&floors_src);
    for (path, line) in metric_paths(&json, &cfg.bench_metric_prefixes) {
        if floors.contains(&path) {
            continue;
        }
        out.push(Violation {
            rule: "drift-bench",
            file: json_rel.clone(),
            line,
            message: format!(
                "bench metric `{path}` has no floor in `{floors_rel}` FLOORS — a regression \
                 would go ungated"
            ),
            waived: waived(&cfg.waive_bench, &path),
        });
    }
}

/// Dotted paths (with 1-indexed lines) of numeric JSON keys whose leaf name
/// starts with one of `prefixes`. A tiny structural scan — enough for the
/// tracked bench file's flat object-of-objects shape.
fn metric_paths(json: &str, prefixes: &[String]) -> Vec<(String, usize)> {
    let bytes = json.as_bytes();
    let mut stack: Vec<String> = Vec::new();
    let mut pending: Option<String> = None;
    let mut paths = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\\' {
                        j += 1;
                    }
                    j += 1;
                }
                let s = &json[start..j.min(json.len())];
                i = (j + 1).min(bytes.len());
                let mut k = i;
                while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                if bytes.get(k) != Some(&b':') {
                    continue;
                }
                i = k + 1;
                let mut v = i;
                while v < bytes.len() && bytes[v].is_ascii_whitespace() {
                    v += 1;
                }
                if bytes.get(v) == Some(&b'{') {
                    pending = Some(s.to_owned());
                } else if prefixes.iter().any(|p| s.starts_with(p.as_str())) {
                    let mut segs: Vec<&str> = stack
                        .iter()
                        .filter(|s| !s.is_empty())
                        .map(|s| s.as_str())
                        .collect();
                    segs.push(s);
                    paths.push((segs.join("."), line_of(json, start)));
                }
            }
            b'{' => {
                stack.push(pending.take().unwrap_or_default());
                i += 1;
            }
            b'}' => {
                stack.pop();
                i += 1;
            }
            _ => i += 1,
        }
    }
    paths
}

/// Dotted paths declared in a `FLOORS` table of the shape
/// `(&["section", "metric"], 2.0)`, parsed textually from the raw source.
fn floor_paths(src: &str) -> Vec<String> {
    let Some(at) = src.find("FLOORS") else {
        return Vec::new();
    };
    let bytes = src.as_bytes();
    // Anchor on the initializer's `=` — the first `[` after FLOORS is in
    // the type annotation (`&[(&[&str], f64)]`), not the table.
    let Some(eq) = src[at..].find('=').map(|p| at + p) else {
        return Vec::new();
    };
    let Some(open) = src[eq..].find('[').map(|p| eq + p) else {
        return Vec::new();
    };
    let end = crate::lexer::matching(bytes, open, b'[', b']').unwrap_or(src.len());
    let body = &src[open + 1..end.saturating_sub(1)];
    // Every inner `[...]` group's string literals form one dotted path.
    let mut paths = Vec::new();
    let mut groups: Vec<Vec<String>> = Vec::new();
    let b = body.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'[' => {
                groups.push(Vec::new());
                i += 1;
            }
            b']' => {
                if let Some(g) = groups.pop() {
                    if !g.is_empty() {
                        paths.push(g.join("."));
                    }
                }
                i += 1;
            }
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'"' {
                    if b[j] == b'\\' {
                        j += 1;
                    }
                    j += 1;
                }
                if let Some(g) = groups.last_mut() {
                    g.push(body[start..j.min(body.len())].to_owned());
                }
                i = (j + 1).min(b.len());
            }
            _ => i += 1,
        }
    }
    paths
}

/// `drift-state-version`: every `const STATE_VERSION` definition site must
/// be referenced by test code, so a version bump cannot land without a
/// migration test noticing.
pub fn state_version(cfg: &Config, files: &[FileScan], out: &mut Vec<Violation>) {
    if !cfg.check_state_version {
        return;
    }
    let corpus = test_corpus(files);
    let covered = has_token(&corpus, "STATE_VERSION");
    for f in files {
        if f.is_test_file() {
            continue;
        }
        let masked = &f.scan.masked;
        let mut search = 0;
        while let Some(pos) = masked[search..].find("STATE_VERSION") {
            let at = search + pos;
            search = at + "STATE_VERSION".len();
            if f.scan.in_test_region(at) {
                continue;
            }
            // Only the definition site: `const STATE_VERSION`.
            let line_start = masked[..at].rfind('\n').map_or(0, |p| p + 1);
            if !masked[line_start..at].contains("const ") {
                continue;
            }
            if !covered {
                out.push(Violation {
                    rule: "drift-state-version",
                    file: f.rel.clone(),
                    line: line_of(&f.src, at),
                    message: "`STATE_VERSION` definition has no migration test referencing it"
                        .to_owned(),
                    waived: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn fs(rel: &str, src: &str) -> FileScan {
        FileScan {
            rel: rel.to_owned(),
            src: src.to_owned(),
            scan: scan(src),
        }
    }

    #[test]
    fn unasserted_stats_field_is_flagged() {
        let def = "pub struct FooStats {\n    pub hits: u64,\n    pub misses: u64,\n}\n";
        let test = "#[test]\nfn t() { assert_eq!(s.hits, 1); }\n";
        let files = vec![fs("src/a.rs", def), fs("tests/t.rs", test)];
        let cfg = Config {
            stats_structs: vec!["FooStats".into()],
            ..Config::default()
        };
        let mut out = Vec::new();
        stats(&cfg, &files, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("FooStats.misses"));
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn metric_and_floor_paths_line_up() {
        let json = "{\n  \"speedup_a\": 2.5,\n  \"ingest\": {\n    \"scaling_b\": 3.0,\n    \"note\": \"x\"\n  }\n}\n";
        let prefixes = vec!["speedup_".to_owned(), "scaling_".to_owned()];
        let got = metric_paths(json, &prefixes);
        let paths: Vec<&str> = got.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["speedup_a", "ingest.scaling_b"]);

        let floors = "pub const FLOORS: &[(&[&str], f64)] = &[\n    (&[\"speedup_a\"], 2.0),\n    (&[\"ingest\", \"scaling_b\"], 2.0),\n];\n";
        assert_eq!(floor_paths(floors), vec!["speedup_a", "ingest.scaling_b"]);
    }

    #[test]
    fn state_version_needs_a_test_reference() {
        let prod = "pub const STATE_VERSION: u8 = 4;\n";
        let cfg = Config {
            check_state_version: true,
            ..Config::default()
        };
        let mut out = Vec::new();
        state_version(&cfg, &[fs("src/a.rs", prod)], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "drift-state-version");

        let test = "#[test]\nfn migrates() { assert!(STATE_VERSION >= 4); }\n";
        let mut out2 = Vec::new();
        state_version(
            &cfg,
            &[fs("src/a.rs", prod), fs("tests/m.rs", test)],
            &mut out2,
        );
        assert!(out2.is_empty(), "{out2:?}");
    }
}
