//! `lints.toml` parsing.
//!
//! The build environment is offline and the linter is dependency-free, so
//! this module implements the small TOML subset the config actually uses:
//! `#` comments, `[table]` / `[table.sub]` headers, and `key = value` where
//! a value is a string, integer, boolean, or a (possibly multi-line) array
//! of strings. Anything beyond that subset is a hard error — a config the
//! gate cannot fully understand must not silently weaken the gate.

use std::collections::BTreeMap;
use std::fmt;

/// A parse failure, with the offending 1-indexed line.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lints.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// One parsed value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    StrArray(Vec<String>),
}

/// Flat `table.key -> value` view of the file.
pub type Raw = BTreeMap<String, Value>;

/// A declared waiver for a drift check: `"key: reason"`.
#[derive(Clone, Debug, PartialEq)]
pub struct Waiver {
    pub key: String,
    pub reason: String,
}

/// The lint gate's configuration.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Path prefixes (relative to the root) under the no-panic discipline.
    pub no_panic_modules: Vec<String>,
    /// Extra forbidden tokens for `no-panic` beyond the built-ins.
    pub no_panic_extra_tokens: Vec<String>,
    /// Extra forbidden tokens for `zero-alloc` beyond the built-ins.
    pub zero_alloc_extra_tokens: Vec<String>,
    /// Outer-to-inner lock acquisition order, by receiver identifier.
    pub lock_hierarchy: Vec<String>,
    /// Locks that forbid blocking sends while held.
    pub no_send_while_holding: Vec<String>,
    /// Substrings identifying a blocking socket send.
    pub send_tokens: Vec<String>,
    /// Path prefixes excluded from every scan (fixtures, vendored code).
    pub exclude: Vec<String>,
    /// `*Stats` struct names whose pub fields must be asserted in tests.
    pub stats_structs: Vec<String>,
    /// `Struct.field` drift waivers, each with a reason.
    pub waive_stats: Vec<Waiver>,
    /// Tracked bench JSON path, relative to the root.
    pub bench_json: Option<String>,
    /// File holding the `FLOORS` table, relative to the root.
    pub bench_floors: Option<String>,
    /// Key prefixes that make a bench metric gate-worthy.
    pub bench_metric_prefixes: Vec<String>,
    /// Dotted bench-metric drift waivers.
    pub waive_bench: Vec<Waiver>,
    /// Whether `STATE_VERSION` definition sites require a migration-test
    /// reference.
    pub check_state_version: bool,
}

/// Parses the flat `table.key` map out of TOML-subset text.
pub fn parse_raw(text: &str) -> Result<Raw, ConfigError> {
    let mut raw = Raw::new();
    let mut table = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, line)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let Some(name) = header.strip_suffix(']') else {
                return Err(err(lineno, "unterminated table header"));
            };
            table = name.trim().to_owned();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(lineno, "expected `key = value`"));
        };
        let key = key.trim();
        let mut value = value.trim().to_owned();
        // A multi-line array: keep consuming lines until brackets balance.
        while value.starts_with('[') && !array_closed(&value) {
            let Some((_, next)) = lines.next() else {
                return Err(err(lineno, "unterminated array"));
            };
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        let full_key = if table.is_empty() {
            key.to_owned()
        } else {
            format!("{table}.{key}")
        };
        raw.insert(full_key, parse_value(&value, lineno)?);
    }
    Ok(raw)
}

/// Parses and validates the full config.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let raw = parse_raw(text)?;
    let strings = |key: &str| -> Vec<String> {
        match raw.get(key) {
            Some(Value::StrArray(v)) => v.clone(),
            Some(Value::Str(s)) => vec![s.clone()],
            _ => Vec::new(),
        }
    };
    let string = |key: &str| -> Option<String> {
        match raw.get(key) {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        }
    };
    let waivers = |key: &str| -> Result<Vec<Waiver>, ConfigError> {
        strings(key)
            .into_iter()
            .map(|entry| match entry.split_once(':') {
                Some((k, reason)) if !reason.trim().is_empty() => Ok(Waiver {
                    key: k.trim().to_owned(),
                    reason: reason.trim().to_owned(),
                }),
                _ => Err(err(
                    0,
                    format!("waiver `{entry}` in {key} needs a `key: reason` form"),
                )),
            })
            .collect()
    };
    Ok(Config {
        no_panic_modules: strings("no_panic.modules"),
        no_panic_extra_tokens: strings("no_panic.extra_tokens"),
        zero_alloc_extra_tokens: strings("zero_alloc.extra_tokens"),
        lock_hierarchy: strings("lock_order.hierarchy"),
        no_send_while_holding: strings("lock_order.no_send_while_holding"),
        send_tokens: {
            let t = strings("lock_order.send_tokens");
            if t.is_empty() {
                vec!["socket.send_to(".into(), "socket.send(".into()]
            } else {
                t
            }
        },
        exclude: strings("exclude"),
        stats_structs: strings("drift.stats_structs"),
        waive_stats: waivers("drift.waive_stats")?,
        bench_json: string("drift.bench_json"),
        bench_floors: string("drift.bench_floors"),
        bench_metric_prefixes: {
            let p = strings("drift.bench_metric_prefixes");
            if p.is_empty() {
                vec!["speedup_".into(), "scaling_".into()]
            } else {
                p
            }
        },
        waive_bench: waivers("drift.waive_bench")?,
        check_state_version: matches!(
            raw.get("drift.check_state_version"),
            Some(Value::Bool(true)) | None
        ),
    })
}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Strips a `#` comment, respecting `"`-quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'\\' if in_str => {} // next byte handled by the toggle anyway
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Whether a single-line `[...]` value has balanced brackets outside
/// strings.
fn array_closed(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for b in value.bytes() {
        match b {
            b'"' => in_str = !in_str,
            b'[' if !in_str => depth += 1,
            b']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_value(value: &str, lineno: usize) -> Result<Value, ConfigError> {
    let value = value.trim();
    if let Some(body) = value.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(err(lineno, "unterminated array"));
        };
        let mut items = Vec::new();
        for item in split_array_items(body) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match parse_value(item, lineno)? {
                Value::Str(s) => items.push(s),
                _ => return Err(err(lineno, "only string arrays are supported")),
            }
        }
        return Ok(Value::StrArray(items));
    }
    if let Some(body) = value.strip_prefix('"') {
        let Some(body) = body.strip_suffix('"') else {
            return Err(err(lineno, "unterminated string"));
        };
        return Ok(Value::Str(body.replace("\\\"", "\"").replace("\\\\", "\\")));
    }
    match value {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    value
        .parse::<i64>()
        .map(Value::Int)
        .map_err(|_| err(lineno, format!("unsupported value `{value}`")))
}

/// Splits array items on commas outside strings.
fn split_array_items(body: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let bytes = body.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b',' if !in_str => {
                items.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    items.push(&body[start..]);
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_subset() {
        let text = r##"
# comment
exclude = ["target", "x # not a comment"]

[no_panic]
modules = [
    "crates/a/src",   # trailing comment
    "crates/b/src/x.rs",
]

[lock_order]
hierarchy = ["broker", "pool"]

[drift]
check_state_version = true
bench_json = "BENCH.json"
waive_stats = ["Foo.bar: informational only"]
"##;
        let cfg = parse(text).expect("parses");
        assert_eq!(cfg.exclude, vec!["target", "x # not a comment"]);
        assert_eq!(
            cfg.no_panic_modules,
            vec!["crates/a/src", "crates/b/src/x.rs"]
        );
        assert_eq!(cfg.lock_hierarchy, vec!["broker", "pool"]);
        assert_eq!(cfg.bench_json.as_deref(), Some("BENCH.json"));
        assert_eq!(cfg.waive_stats.len(), 1);
        assert_eq!(cfg.waive_stats[0].key, "Foo.bar");
        assert_eq!(cfg.waive_stats[0].reason, "informational only");
        assert!(cfg.check_state_version);
    }

    #[test]
    fn waiver_without_reason_is_rejected() {
        let text = "[drift]\nwaive_stats = [\"Foo.bar\"]\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn garbage_is_a_hard_error() {
        assert!(parse("key value\n").is_err());
        assert!(parse("[unclosed\n").is_err());
    }
}
