//! `prov-lint` — the project-specific static-analysis gate.
//!
//! Four rule families, configured by the root `lints.toml`:
//!
//! - **no-panic** — panic idioms are forbidden in the configured
//!   production modules; `// lint:allow(no-panic): <reason>` waives one
//!   finding with an auditable reason.
//! - **zero-alloc** — regions between `// lint: zero-alloc-begin` and
//!   `// lint: zero-alloc-end` forbid allocation idioms, making the
//!   counting-allocator tests' invariant visible at review time.
//! - **lock-order** / **lock-send** — nested lock acquisitions must follow
//!   the declared hierarchy, and blocking socket sends are forbidden while
//!   a broker lock is held (PR 5's drain-then-flush discipline).
//! - **drift-stats** / **drift-bench** / **drift-state-version** — paired
//!   artifacts (counter/assertion, metric/floor, version/migration-test)
//!   must not drift apart.
//!
//! The crate is dependency-free on purpose: the gate must build offline,
//! before — and independently of — everything it checks.

pub mod config;
pub mod drift;
pub mod lexer;
pub mod rules;

use std::io;
use std::path::{Path, PathBuf};

use config::Config;
use drift::FileScan;
pub use rules::Violation;

/// The result of linting a workspace.
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Every finding, waived and unwaived, sorted by file/line/rule.
    pub violations: Vec<Violation>,
}

impl Report {
    /// Findings that fail the gate.
    pub fn unwaived(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| v.waived.is_none())
    }

    /// Findings covered by a waiver.
    pub fn waived(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| v.waived.is_some())
    }

    /// `(rule, waived count)` tally, for the CI summary.
    pub fn waiver_tally(&self) -> Vec<(&'static str, usize)> {
        let mut tally: Vec<(&'static str, usize)> = Vec::new();
        for v in self.waived() {
            match tally.iter_mut().find(|(r, _)| *r == v.rule) {
                Some((_, n)) => *n += 1,
                None => tally.push((v.rule, 1)),
            }
        }
        tally.sort();
        tally
    }
}

/// Lints the workspace rooted at `root` (the directory holding
/// `lints.toml`).
pub fn lint_root(root: &Path) -> io::Result<Report> {
    let cfg_text = std::fs::read_to_string(root.join("lints.toml"))?;
    let cfg = config::parse(&cfg_text).map_err(io::Error::other)?;
    lint_with_config(root, &cfg)
}

/// Lints `root` under an already-parsed config (fixture tests use this).
pub fn lint_with_config(root: &Path, cfg: &Config) -> io::Result<Report> {
    let mut paths = Vec::new();
    collect_rs_files(root, root, cfg, &mut paths)?;
    paths.sort();

    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let src = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let scan = lexer::scan(&src);
        files.push(FileScan { rel, src, scan });
    }

    let mut violations = Vec::new();
    for f in &files {
        if cfg
            .no_panic_modules
            .iter()
            .any(|m| f.rel.starts_with(m.as_str()))
        {
            rules::no_panic(&f.scan, &f.src, &f.rel, cfg, &mut violations);
        }
        rules::zero_alloc(&f.scan, &f.src, &f.rel, cfg, &mut violations);
        rules::lock_order(&f.scan, &f.src, &f.rel, cfg, &mut violations);
        rules::directive_lint(&f.scan, &f.rel, &mut violations);
    }
    drift::stats(cfg, &files, &mut violations);
    drift::bench(cfg, root, &files, &mut violations);
    drift::state_version(cfg, &files, &mut violations);

    violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(Report {
        files: files.len(),
        violations,
    })
}

/// Recursively collects workspace `.rs` files, skipping build output, VCS
/// metadata, and configured excludes.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<PathBuf>,
) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name == ".git" || name == "target" || name.starts_with('.') {
            continue;
        }
        if cfg
            .exclude
            .iter()
            .any(|e| rel == *e || rel.starts_with(&format!("{e}/")))
        {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            collect_rs_files(root, &path, cfg, out)?;
        } else if ty.is_file() && rel.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
