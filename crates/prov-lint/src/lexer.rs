//! A minimal Rust surface lexer for textual lint rules.
//!
//! Lint rules match tokens in source text, so the one job of this module is
//! to make that matching *honest*: a `.unwrap()` inside a string literal, a
//! doc comment, or a `#[cfg(test)]` module is not a violation. The lexer
//! produces a **masked** copy of the source — comment and literal contents
//! blanked to spaces, newlines preserved so byte offsets and line numbers
//! stay aligned with the original — plus the `lint:` directives found in
//! comments and the byte ranges of test-only code.
//!
//! This is deliberately not a full parser. It understands exactly as much
//! Rust as the rules need: line/block comments (nested), string / raw
//! string / byte string / char literals, lifetimes, attributes, and brace
//! matching. That subset is stable across editions and keeps the linter
//! dependency-free.

use std::ops::Range;

/// One `lint:` directive extracted from a comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Directive {
    /// 1-indexed line the comment starts on.
    pub line: usize,
    /// Byte offset of the comment opener in the source.
    pub offset: usize,
    /// Directive text after the `lint:` marker, trimmed.
    pub text: String,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Scan {
    /// Source with comment bodies and literal contents blanked to spaces.
    /// Same byte length as the input; newlines are preserved.
    pub masked: String,
    /// Every `lint:` directive, in source order.
    pub directives: Vec<Directive>,
    /// Byte ranges covering `#[cfg(test)]` items and `#[test]` functions.
    pub test_regions: Vec<Range<usize>>,
}

impl Scan {
    /// Whether `offset` falls inside test-only code.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions.iter().any(|r| r.contains(&offset))
    }
}

/// 1-indexed line number of a byte offset.
pub fn line_of(src: &str, offset: usize) -> usize {
    src.as_bytes()[..offset.min(src.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Lexes `src` into a [`Scan`].
pub fn scan(src: &str) -> Scan {
    let bytes = src.as_bytes();
    let mut masked = Vec::with_capacity(bytes.len());
    let mut directives = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Blanks `bytes[from..to]` into `masked`, preserving newlines, and
    // harvests any `lint:` directive from the skipped comment text.
    let blank = |masked: &mut Vec<u8>,
                 directives: &mut Vec<Directive>,
                 line: &mut usize,
                 from: usize,
                 to: usize,
                 comment: bool| {
        if comment {
            let text = &src[from..to];
            if let Some(pos) = text.find("lint:") {
                let rest = text[pos + "lint:".len()..].trim();
                // Strip a trailing block-comment closer.
                let rest = rest.strip_suffix("*/").map_or(rest, str::trim_end);
                directives.push(Directive {
                    line: *line,
                    offset: from,
                    text: rest.to_owned(),
                });
            }
        }
        for &b in &bytes[from..to] {
            if b == b'\n' {
                masked.push(b'\n');
                *line += 1;
            } else {
                masked.push(b' ');
            }
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = src[i..].find('\n').map_or(bytes.len(), |n| i + n);
                blank(&mut masked, &mut directives, &mut line, i, end, true);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comments, as Rust allows.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut masked, &mut directives, &mut line, i, j, true);
                i = j;
            }
            b'"' => {
                let end = skip_string(bytes, i);
                masked.push(b'"');
                blank(
                    &mut masked,
                    &mut directives,
                    &mut line,
                    i + 1,
                    end - 1,
                    false,
                );
                masked.push(b'"');
                i = end;
            }
            b'r' | b'b' if is_raw_or_byte_literal(bytes, i) => {
                let (open, end) = skip_raw_or_byte(bytes, i);
                masked.extend_from_slice(&bytes[i..open]);
                blank(&mut masked, &mut directives, &mut line, open, end, false);
                i = end;
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    masked.push(b'\'');
                    blank(
                        &mut masked,
                        &mut directives,
                        &mut line,
                        i + 1,
                        end - 1,
                        false,
                    );
                    masked.push(b'\'');
                    i = end;
                } else {
                    // A lifetime / loop label: keep the tick.
                    masked.push(b'\'');
                    i += 1;
                }
            }
            _ => {
                if b == b'\n' {
                    line += 1;
                }
                masked.push(b);
                i += 1;
            }
        }
    }

    let masked = String::from_utf8(masked).unwrap_or_default();
    let test_regions = find_test_regions(&masked);
    Scan {
        masked,
        directives,
        test_regions,
    }
}

/// Returns the index just past a `"`-delimited string starting at `i`.
fn skip_string(bytes: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Whether `i` starts a raw string (`r"`, `r#"`), byte string (`b"`), or
/// raw byte string (`br#"`) literal rather than a plain identifier.
fn is_raw_or_byte_literal(bytes: &[u8], i: usize) -> bool {
    // Not a literal when the r/b is the tail of an identifier (`attr"..."`
    // cannot occur; `var"` is not Rust; but `number_of_rs` followed by
    // something must not confuse us — require a non-ident char before).
    if i > 0 {
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return false;
        }
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) == Some(&b'"') {
            return true; // b"..."
        }
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        return bytes.get(j) == Some(&b'"');
    }
    false
}

/// Returns `(content start, index past the literal)` for the raw/byte
/// string starting at `i`. For `b"..."` the content is scanned with escape
/// handling; raw forms scan to `"` followed by the opener's `#` count.
fn skip_raw_or_byte(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        let mut hashes = 0usize;
        while bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        let open = j + 1; // past the opening quote
        let mut k = open;
        while k < bytes.len() {
            if bytes[k] == b'"' && bytes[k + 1..].iter().take(hashes).all(|&h| h == b'#') {
                return (open, k + 1 + hashes);
            }
            k += 1;
        }
        (open, k)
    } else {
        // b"..."
        let end = skip_string(bytes, j);
        (j + 1, end)
    }
}

/// Returns the index past a char literal starting at `i`, or `None` when
/// the tick is a lifetime / loop label.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1)? {
        b'\\' => {
            // Escape: scan to the closing tick.
            let mut j = i + 2;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'\'' => return Some(j + 1),
                    _ => j += 1,
                }
            }
            None
        }
        _ => {
            // `'x'` is a char literal; `'x` (no closing tick right after
            // one scalar) is a lifetime. Multi-byte scalars: find the next
            // tick within 4 bytes.
            let mut j = i + 2;
            while j < (i + 6).min(bytes.len()) {
                if bytes[j] == b'\'' {
                    return Some(j + 1);
                }
                if !is_utf8_continuation(bytes[j]) && j > i + 2 {
                    break;
                }
                j += 1;
            }
            None
        }
    }
}

fn is_utf8_continuation(b: u8) -> bool {
    b & 0b1100_0000 == 0b1000_0000
}

/// Finds the byte ranges of `#[cfg(test)]` items and `#[test]` functions in
/// masked source (so attribute text inside strings cannot confuse it).
fn find_test_regions(masked: &str) -> Vec<Range<usize>> {
    let bytes = masked.as_bytes();
    let mut regions: Vec<Range<usize>> = Vec::new();
    let mut search = 0usize;
    while let Some(pos) = masked[search..].find("#[") {
        let attr_start = search + pos;
        let Some(attr_end) = matching(bytes, attr_start + 1, b'[', b']') else {
            break;
        };
        let attr = &masked[attr_start..attr_end];
        search = attr_end;
        if !(attr.contains("cfg(test)")
            || attr.contains("cfg(all(test")
            || attr.contains("cfg(any(test")
            || attr == "#[test]"
            || attr.starts_with("#[test ")
            || attr.contains("tokio::test"))
        {
            continue;
        }
        // The attribute applies to the next item: skip further attributes,
        // then take everything to the end of the item (matched `{...}` or
        // the terminating `;`).
        let mut j = attr_end;
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'#') && bytes.get(j + 1) == Some(&b'[') {
                match matching(bytes, j + 1, b'[', b']') {
                    Some(e) => j = e,
                    None => break,
                }
            } else {
                break;
            }
        }
        let mut end = j;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => {
                    end = matching(bytes, end, b'{', b'}').unwrap_or(bytes.len());
                    break;
                }
                b';' => {
                    end += 1;
                    break;
                }
                _ => end += 1,
            }
        }
        // Coalesce: an inner `#[test]` already inside a `#[cfg(test)]` mod
        // extends nothing.
        if let Some(last) = regions.last_mut() {
            if last.contains(&attr_start) {
                if end > last.end {
                    last.end = end;
                }
                if end > search {
                    search = end;
                }
                continue;
            }
        }
        if end > search {
            search = end;
        }
        regions.push(attr_start..end);
    }
    regions
}

/// Index just past the bracket pair opening at `open` (which must hold the
/// `open_b` byte). `None` when unbalanced.
pub fn matching(bytes: &[u8], open: usize, open_b: u8, close_b: u8) -> Option<usize> {
    debug_assert_eq!(bytes.get(open), Some(&open_b));
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        if bytes[i] == open_b {
            depth += 1;
        } else if bytes[i] == close_b {
            depth -= 1;
            if depth == 0 {
                return Some(i + 1);
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"panic!\"; // .unwrap() here\nlet y = 1;";
        let s = scan(src);
        assert_eq!(s.masked.len(), src.len());
        assert!(!s.masked.contains("panic!"));
        assert!(!s.masked.contains(".unwrap()"));
        assert!(s.masked.contains("let y = 1;"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked_lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) { let s = r#\"unreachable!()\"#; let c = '\\''; }";
        let s = scan(src);
        assert!(!s.masked.contains("unreachable!"));
        assert!(s.masked.contains("fn f<'a>"));
        assert_eq!(s.masked.len(), src.len());
    }

    #[test]
    fn directives_are_harvested_with_lines() {
        let src =
            "fn a() {}\n// lint: zero-alloc-begin\nfn b() {}\n// lint:allow(no-panic): init only\n";
        let s = scan(src);
        assert_eq!(s.directives.len(), 2);
        assert_eq!(s.directives[0].line, 2);
        assert_eq!(s.directives[0].text, "zero-alloc-begin");
        assert_eq!(s.directives[1].line, 4);
        assert_eq!(s.directives[1].text, "allow(no-panic): init only");
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y.unwrap(); }\n}\n";
        let s = scan(src);
        assert_eq!(s.test_regions.len(), 1);
        let prod = src.find("x.unwrap").unwrap();
        let test = src.find("y.unwrap").unwrap();
        assert!(!s.in_test_region(prod));
        assert!(s.in_test_region(test));
    }

    #[test]
    fn standalone_test_fn_is_a_region() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn prod() { b.unwrap(); }\n";
        let s = scan(src);
        assert!(s.in_test_region(src.find("a.unwrap").unwrap()));
        assert!(!s.in_test_region(src.find("b.unwrap").unwrap()));
    }
}
