//! `provlight-lint` — the CI entry point.
//!
//! Usage: `provlight-lint [ROOT]`. With no argument the tool walks up from
//! the current directory to the nearest `lints.toml`. Exit status is 0 when
//! every finding is waived, 1 on unwaived violations, 2 on usage or I/O
//! errors — so CI distinguishes "the code is bad" from "the gate is
//! broken".

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let root = match args.next() {
        Some(arg) if arg == "--help" || arg == "-h" => {
            eprintln!("usage: provlight-lint [ROOT]   # ROOT holds lints.toml");
            return ExitCode::from(0);
        }
        Some(arg) => PathBuf::from(arg),
        None => match find_root() {
            Some(r) => r,
            None => {
                eprintln!("provlight-lint: no lints.toml found walking up from the current dir");
                return ExitCode::from(2);
            }
        },
    };

    let report = match prov_lint::lint_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("provlight-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut unwaived = 0usize;
    for v in report.unwaived() {
        unwaived += 1;
        println!("{} {}:{} {}", v.rule, v.file, v.line, v.message);
    }

    let tally = report.waiver_tally();
    let waived_total: usize = tally.iter().map(|(_, n)| n).sum();
    println!(
        "provlight-lint: {} files, {} violation(s), {} waived",
        report.files, unwaived, waived_total
    );
    for (rule, n) in &tally {
        println!("  waived {rule}: {n}");
    }

    if unwaived > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::from(0)
    }
}

/// Nearest ancestor directory containing `lints.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("lints.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
