//! The per-file rule families: `no-panic`, `zero-alloc`, `lock-order`,
//! `lock-send`, and the waiver machinery shared by all of them.

use crate::config::Config;
use crate::lexer::{line_of, Scan};

/// One finding, waived or not.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Rule id (`no-panic`, `zero-alloc`, `lock-order`, `lock-send`,
    /// `drift-stats`, `drift-bench`, `drift-state-version`,
    /// `lint-directive`).
    pub rule: &'static str,
    /// Root-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    pub message: String,
    /// `Some(reason)` when a waiver covered the finding.
    pub waived: Option<String>,
}

/// Forbidden panic idioms in production modules. Tokens starting with `.`
/// are method-shaped and self-anchoring; bare names are macros and must not
/// be the tail of a longer identifier.
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    ".unwrap_err()",
    ".expect_err(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Allocation idioms forbidden inside `zero-alloc` regions. The list is
/// textual: `.clone()` on a `Copy` type is a false positive a waiver can
/// document, while a missed allocation behind a helper call is what the
/// counting-allocator tests exist for — the two gates are complementary.
const ALLOC_TOKENS: &[&str] = &[
    "Vec::new",
    "vec![",
    ".to_vec(",
    "format!",
    "String::new",
    "String::from",
    ".to_string(",
    ".to_owned(",
    "Box::new",
    ".clone()",
    "with_capacity(",
    ".collect(",
    "HashMap::new",
    "BTreeMap::new",
    "VecDeque::new",
];

/// A `lint:allow(rule): reason` comment waiver, covering its own line and
/// the following one.
struct Waiver {
    rule: String,
    line: usize,
    reason: String,
}

/// Parses the well-formed waivers out of a scan's directives. Malformed
/// `allow` directives are reported by [`directive_lint`] — every rule
/// family calls this accessor, so it must not push diagnostics itself or
/// each finding would be duplicated per family.
fn waivers(scan: &Scan) -> Vec<Waiver> {
    let mut list = Vec::new();
    for d in &scan.directives {
        let Some(rest) = d.text.strip_prefix("allow(") else {
            continue;
        };
        let Some((rule, tail)) = rest.split_once(')') else {
            continue;
        };
        let reason = tail.trim_start_matches(':').trim();
        if reason.is_empty() {
            continue;
        }
        list.push(Waiver {
            rule: rule.trim().to_owned(),
            line: d.line,
            reason: reason.to_owned(),
        });
    }
    list
}

/// `lint-directive`: malformed `allow` waivers, reported once per file.
pub fn directive_lint(scan: &Scan, file: &str, out: &mut Vec<Violation>) {
    for d in &scan.directives {
        let Some(rest) = d.text.strip_prefix("allow(") else {
            continue;
        };
        let Some((rule, tail)) = rest.split_once(')') else {
            out.push(Violation {
                rule: "lint-directive",
                file: file.to_owned(),
                line: d.line,
                message: format!("malformed waiver `lint:{}`", d.text),
                waived: None,
            });
            continue;
        };
        let reason = tail.trim_start_matches(':').trim();
        if reason.is_empty() {
            out.push(Violation {
                rule: "lint-directive",
                file: file.to_owned(),
                line: d.line,
                message: format!(
                    "waiver `lint:allow({rule})` needs a reason: `lint:allow({rule}): <why the invariant holds>`"
                ),
                waived: None,
            });
        }
    }
}

/// Applies waivers to a raw finding: a waiver for the same rule on the same
/// line (trailing comment) or the preceding line (standalone comment).
fn apply_waiver(waivers: &[Waiver], rule: &str, line: usize) -> Option<String> {
    waivers
        .iter()
        .find(|w| w.rule == rule && (w.line == line || w.line + 1 == line))
        .map(|w| w.reason.clone())
}

/// Byte offsets of `token` occurrences in `masked`, boundary-checked.
fn token_hits(masked: &str, token: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let anchored = token.starts_with('.') || token.starts_with('[');
    let mut search = 0;
    while let Some(pos) = masked[search..].find(token) {
        let at = search + pos;
        search = at + token.len();
        if !anchored {
            // Macros and type paths: reject matches that are the tail of a
            // longer identifier (`dont_panic!`, `MyVec::new`).
            if at > 0 {
                let prev = masked.as_bytes()[at - 1];
                if prev.is_ascii_alphanumeric() || prev == b'_' {
                    continue;
                }
            }
        }
        hits.push(at);
    }
    hits
}

/// Runs `no-panic` over one production-module file.
pub fn no_panic(scan: &Scan, src: &str, file: &str, cfg: &Config, out: &mut Vec<Violation>) {
    let ws = waivers(scan);
    let mut tokens: Vec<&str> = PANIC_TOKENS.to_vec();
    for t in &cfg.no_panic_extra_tokens {
        tokens.push(t);
    }
    for token in tokens {
        for at in token_hits(&scan.masked, token) {
            if scan.in_test_region(at) {
                continue;
            }
            let line = line_of(src, at);
            out.push(Violation {
                rule: "no-panic",
                file: file.to_owned(),
                line,
                message: format!("`{}` in a production module", token.trim_end_matches('(')),
                waived: apply_waiver(&ws, "no-panic", line),
            });
        }
    }
}

/// Runs `zero-alloc` over one file's annotated regions.
pub fn zero_alloc(scan: &Scan, src: &str, file: &str, cfg: &Config, out: &mut Vec<Violation>) {
    let ws = waivers(scan);
    // Pair up begin/end directives into regions.
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut open: Option<(usize, usize)> = None; // (offset, line)
    for d in &scan.directives {
        match d.text.as_str() {
            "zero-alloc-begin" => {
                if let Some((_, line)) = open {
                    out.push(Violation {
                        rule: "lint-directive",
                        file: file.to_owned(),
                        line: d.line,
                        message: format!(
                            "nested `zero-alloc-begin` (previous opened on line {line})"
                        ),
                        waived: None,
                    });
                }
                open = Some((d.offset, d.line));
            }
            "zero-alloc-end" => match open.take() {
                Some((start, _)) => regions.push((start, d.offset)),
                None => out.push(Violation {
                    rule: "lint-directive",
                    file: file.to_owned(),
                    line: d.line,
                    message: "`zero-alloc-end` without a matching begin".to_owned(),
                    waived: None,
                }),
            },
            _ => {}
        }
    }
    if let Some((_, line)) = open {
        out.push(Violation {
            rule: "lint-directive",
            file: file.to_owned(),
            line,
            message: "`zero-alloc-begin` never closed".to_owned(),
            waived: None,
        });
    }
    if regions.is_empty() {
        return;
    }
    let mut tokens: Vec<&str> = ALLOC_TOKENS.to_vec();
    for t in &cfg.zero_alloc_extra_tokens {
        tokens.push(t);
    }
    for token in tokens {
        for at in token_hits(&scan.masked, token) {
            if !regions.iter().any(|&(s, e)| at > s && at < e) {
                continue;
            }
            let line = line_of(src, at);
            out.push(Violation {
                rule: "zero-alloc",
                file: file.to_owned(),
                line,
                message: format!(
                    "allocation idiom `{}` inside a zero-alloc region",
                    token.trim_end_matches('(')
                ),
                waived: apply_waiver(&ws, "zero-alloc", line),
            });
        }
    }
}

/// How long an acquired guard lives.
#[derive(Clone, Copy, Debug, PartialEq)]
enum GuardScope {
    /// `let g = x.lock();` — until the enclosing block closes.
    Block,
    /// A temporary (`x.lock().do()`) — until the statement's `;`.
    Statement,
}

#[derive(Debug)]
struct Guard {
    /// Receiver identifier, e.g. `broker`.
    name: String,
    /// Index in the configured hierarchy.
    rank: usize,
    /// Bound variable, for `drop(var)` tracking.
    var: Option<String>,
    /// Brace depth at acquisition.
    depth: usize,
    scope: GuardScope,
}

/// Runs `lock-order` + `lock-send` over one file.
pub fn lock_order(scan: &Scan, src: &str, file: &str, cfg: &Config, out: &mut Vec<Violation>) {
    if cfg.lock_hierarchy.is_empty() {
        return;
    }
    let ws = waivers(scan);
    let masked = &scan.masked;
    let bytes = masked.as_bytes();

    // Collect interesting events in offset order: acquisitions, sends,
    // drops. Then replay them against a brace walk.
    #[derive(Debug)]
    enum Event {
        Acquire {
            at: usize,
            name: String,
            rank: usize,
            var: Option<String>,
            scope: GuardScope,
        },
        Send {
            at: usize,
            token: String,
        },
        Drop {
            at: usize,
            var: String,
        },
    }
    let mut events: Vec<Event> = Vec::new();
    for token in [".lock()", ".read()", ".write()"] {
        for at in token_hits(masked, token) {
            if scan.in_test_region(at) {
                continue;
            }
            let Some(name) = receiver_name(bytes, at) else {
                continue;
            };
            let Some(rank) = cfg.lock_hierarchy.iter().position(|h| h == &name) else {
                continue;
            };
            let stmt = statement_start(bytes, at);
            let (is_let, var) = let_binding(masked, stmt, at);
            let after = at + token.len();
            let ends_stmt = masked[after..]
                .bytes()
                .find(|b| !b.is_ascii_whitespace())
                .is_none_or(|b| b == b';');
            let scope = if is_let && ends_stmt {
                GuardScope::Block
            } else {
                GuardScope::Statement
            };
            events.push(Event::Acquire {
                at,
                name,
                rank,
                var,
                scope,
            });
        }
    }
    for token in &cfg.send_tokens {
        for at in token_hits(masked, token) {
            if scan.in_test_region(at) {
                continue;
            }
            events.push(Event::Send {
                at,
                token: token.clone(),
            });
        }
    }
    for at in token_hits(masked, "drop(") {
        if scan.in_test_region(at) {
            continue;
        }
        let inner = &masked[at + "drop(".len()..];
        let var: String = inner
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !var.is_empty() {
            events.push(Event::Drop { at, var });
        }
    }
    events.sort_by_key(|e| match e {
        Event::Acquire { at, .. } | Event::Send { at, .. } | Event::Drop { at, .. } => *at,
    });

    // Replay: walk braces and statement ends, expiring guards as scopes
    // close, checking each acquisition/send against the held set.
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut ev = events.iter().peekable();
    for (i, &b) in bytes.iter().enumerate() {
        while let Some(e) = ev.peek() {
            let at = match e {
                Event::Acquire { at, .. } | Event::Send { at, .. } | Event::Drop { at, .. } => *at,
            };
            if at > i {
                break;
            }
            match ev.next().expect("peeked") {
                Event::Acquire {
                    at,
                    name,
                    rank,
                    var,
                    scope,
                } => {
                    let line = line_of(src, *at);
                    for held in &guards {
                        if held.rank >= *rank {
                            out.push(Violation {
                                rule: "lock-order",
                                file: file.to_owned(),
                                line,
                                message: format!(
                                    "`{name}` (rank {rank}) acquired while holding `{}` (rank {}): \
                                     declared order is {:?}",
                                    held.name, held.rank, cfg.lock_hierarchy
                                ),
                                waived: apply_waiver(&ws, "lock-order", line),
                            });
                        }
                    }
                    guards.push(Guard {
                        name: name.clone(),
                        rank: *rank,
                        var: var.clone(),
                        depth,
                        scope: *scope,
                    });
                }
                Event::Send { at, token } => {
                    let line = line_of(src, *at);
                    for held in &guards {
                        if cfg.no_send_while_holding.contains(&held.name) {
                            out.push(Violation {
                                rule: "lock-send",
                                file: file.to_owned(),
                                line,
                                message: format!(
                                    "blocking send `{}` while holding `{}` lock — drain under the \
                                     lock, flush after unlock",
                                    token.trim_end_matches('('),
                                    held.name
                                ),
                                waived: apply_waiver(&ws, "lock-send", line),
                            });
                        }
                    }
                }
                Event::Drop { var, .. } => {
                    guards.retain(|g| g.var.as_deref() != Some(var.as_str()));
                }
            }
        }
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            b';' => guards.retain(|g| !(g.scope == GuardScope::Statement && g.depth == depth)),
            _ => {}
        }
    }
}

/// The receiver identifier of a method call whose `.` sits at `dot`:
/// `self.broker.lock()` → `broker`; `shards[i].read()` → `shards`;
/// `store.shard(s).write()` → `shard`.
fn receiver_name(bytes: &[u8], dot: usize) -> Option<String> {
    let mut i = dot; // index one past the component we are examining
    loop {
        while i > 0 && bytes[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        if i == 0 {
            return None;
        }
        match bytes[i - 1] {
            b']' => i = matching_back(bytes, i - 1, b'[', b']')?,
            b')' => {
                // A call: the identifier before the `(` names it.
                let open = matching_back(bytes, i - 1, b'(', b')')?;
                let end = open;
                let start = ident_start(bytes, end);
                if start < end {
                    return Some(String::from_utf8_lossy(&bytes[start..end]).into_owned());
                }
                i = open;
            }
            c if c.is_ascii_alphanumeric() || c == b'_' => {
                let start = ident_start(bytes, i);
                return Some(String::from_utf8_lossy(&bytes[start..i]).into_owned());
            }
            _ => return None,
        }
    }
}

/// Index of the opening bracket matching the closer at `close`.
fn matching_back(bytes: &[u8], close: usize, open_b: u8, close_b: u8) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = close;
    loop {
        if bytes[i] == close_b {
            depth += 1;
        } else if bytes[i] == open_b {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
}

fn ident_start(bytes: &[u8], end: usize) -> usize {
    let mut start = end;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    start
}

/// Offset just past the previous statement boundary (`;`, `{`, `}`).
fn statement_start(bytes: &[u8], at: usize) -> usize {
    let mut i = at;
    while i > 0 {
        match bytes[i - 1] {
            b';' | b'{' | b'}' => return i,
            _ => i -= 1,
        }
    }
    0
}

/// Whether the statement holding `at` is a `let`, and the bound identifier
/// when the pattern is a plain (possibly `mut`) name.
fn let_binding(masked: &str, stmt_start: usize, at: usize) -> (bool, Option<String>) {
    let stmt = masked[stmt_start..at].trim_start();
    let Some(rest) = stmt.strip_prefix("let ") else {
        return (false, None);
    };
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let var: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (true, (!var.is_empty()).then_some(var))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn cfg() -> Config {
        Config {
            lock_hierarchy: vec!["broker".into(), "shards".into(), "pool".into()],
            no_send_while_holding: vec!["broker".into()],
            send_tokens: vec!["socket.send_to(".into(), "socket.send(".into()],
            ..Config::default()
        }
    }

    #[test]
    fn no_panic_flags_and_waives() {
        let src = "fn f() {\n    x.unwrap();\n    // lint:allow(no-panic): length checked above\n    y.unwrap();\n}\n";
        let s = scan(src);
        let mut out = Vec::new();
        no_panic(&s, src, "f.rs", &Config::default(), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].line, out[0].waived.is_none()), (2, true));
        assert_eq!(out[1].line, 4);
        assert_eq!(out[1].waived.as_deref(), Some("length checked above"));
    }

    #[test]
    fn zero_alloc_region_flags_inside_only() {
        let src = "fn a() { let v = Vec::new(); }\n// lint: zero-alloc-begin\nfn hot() { let v = vec![1]; }\n// lint: zero-alloc-end\nfn b() { format!(\"x\"); }\n";
        let s = scan(src);
        let mut out = Vec::new();
        zero_alloc(&s, src, "f.rs", &Config::default(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "zero-alloc");
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn lock_order_inversion_is_flagged() {
        let src = "fn f(a: L, b: L) {\n    let g = pool.lock();\n    let h = broker.lock();\n}\n";
        let s = scan(src);
        let mut out = Vec::new();
        lock_order(&s, src, "f.rs", &cfg(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "lock-order");
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn correct_order_and_scope_expiry_pass() {
        let src = "fn f() {\n    {\n        let g = broker.lock();\n        let h = pool.lock();\n    }\n    let p = pool.lock();\n    drop(p);\n    let q = broker.lock();\n    socket.send_to(b, a);\n}\n";
        // The final send happens while `q` (broker) is held → lock-send;
        // everything before is ordered or expired.
        let s = scan(src);
        let mut out = Vec::new();
        lock_order(&s, src, "f.rs", &cfg(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "lock-send");
        assert_eq!(out[0].line, 9);
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "fn f() {\n    let x = broker.lock().stats();\n    socket.send_to(b, a);\n}\n";
        let s = scan(src);
        let mut out = Vec::new();
        lock_order(&s, src, "f.rs", &cfg(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn send_under_block_guard_is_flagged() {
        let src = "fn f() {\n    let b = broker.lock();\n    socket.send(x);\n}\n";
        let s = scan(src);
        let mut out = Vec::new();
        lock_order(&s, src, "f.rs", &cfg(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "lock-send");
    }

    #[test]
    fn receiver_names_resolve_through_chains() {
        let b = b"self.shards[self.shard_of(w)].read()";
        let dot = b.len() - ".read()".len();
        assert_eq!(receiver_name(b, dot).as_deref(), Some("shards"));
        let b2 = b"store.shard(s).write()";
        let dot2 = b2.len() - ".write()".len();
        assert_eq!(receiver_name(b2, dot2).as_deref(), Some("shard"));
    }
}
