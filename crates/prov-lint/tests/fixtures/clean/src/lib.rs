//! Clean fixture: ordered locks, a waived panic with an audited reason,
//! an allocation-free hot region, and fully asserted stats.

pub struct CleanStats {
    pub ticks: u64,
}

pub const STATE_VERSION: u8 = 1;

pub fn careful(x: Option<u32>) -> u32 {
    // lint:allow(no-panic): fixture: checked by the caller
    x.unwrap()
}

// lint: zero-alloc-begin
pub fn hot(buf: &mut Vec<u8>) {
    buf.push(1);
}
// lint: zero-alloc-end

pub fn ordered(outer: &Lock, inner: &Lock) {
    let o = outer.lock();
    let i = inner.lock();
    drop(i);
    drop(o);
}
