//! Test corpus keeping the clean fixture drift-free: every stats counter
//! and the state version are referenced here.

pub fn covers(s: &CleanStats) {
    assert_eq!(s.ticks, 0);
    assert_eq!(STATE_VERSION, 1);
}
