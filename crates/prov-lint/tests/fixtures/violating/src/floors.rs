//! Bench-floor fixture: `speedup_floored` is gated, `speedup_orphaned`
//! is not.

pub const FLOORS: &[(&[&str], f64)] = &[(&["speedup_floored"], 2.0)];
