//! Zero-alloc fixture: an allocation idiom inside the annotated region.

pub fn cold() -> Vec<u8> {
    Vec::new()
}

// lint: zero-alloc-begin
pub fn hot(out: &mut Vec<u8>) {
    out.extend_from_slice(b"ok");
    let copy = out.to_vec();
    drop(copy);
}
// lint: zero-alloc-end
