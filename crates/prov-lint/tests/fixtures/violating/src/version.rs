//! State-version fixture: a bump with no migration test anywhere.

pub const STATE_VERSION: u8 = 9;
