//! Panic-rule fixture: one raw violation, one waived call, one
//! reason-less directive, and test-region / string-literal exemptions.

pub fn raw(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn waived(x: Option<u32>) -> u32 {
    // lint:allow(no-panic): fixture: caller guarantees Some
    x.expect("present")
}

// lint:allow(no-panic)
pub fn reasonless() {}

pub fn not_code() -> &'static str {
    "panic! inside a string literal is not a finding"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_are_exempt() {
        let v: Option<u32> = Some(1);
        v.unwrap();
    }
}
