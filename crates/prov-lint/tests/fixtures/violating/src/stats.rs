//! Stats-drift fixture: `hits` is asserted in the embedded test region,
//! `misses` in the integration-test tree, `orphaned` nowhere, and
//! `waived_field` carries a `lints.toml` waiver.

pub struct GadgetStats {
    pub hits: u64,
    pub misses: u64,
    pub orphaned: u64,
    pub waived_field: u64,
}

#[cfg(test)]
mod tests {
    #[test]
    fn embedded_regions_count_as_test_corpus() {
        let s = super::GadgetStats {
            hits: 1,
            misses: 0,
            orphaned: 0,
            waived_field: 0,
        };
        assert_eq!(s.hits, 1);
    }
}
