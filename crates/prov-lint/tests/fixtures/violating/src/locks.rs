//! Lock-order fixture: a rank inversion and a blocking send under the
//! outer lock; `ordered` shows the compliant shape.

pub fn inverted(outer: &Lock, inner: &Lock) {
    let i = inner.lock();
    let o = outer.lock();
    drop(o);
    drop(i);
}

pub fn send_under_lock(outer: &Lock, socket: &Socket, buf: &[u8]) {
    let g = outer.lock();
    socket.send(buf);
    drop(g);
}

pub fn ordered(outer: &Lock, inner: &Lock) {
    let o = outer.lock();
    let i = inner.lock();
    drop(i);
    drop(o);
}
