//! Whole-file test corpus: covers `GadgetStats.misses` from the
//! integration-test tree (the path decides — no `#[test]` needed).

pub fn covers_misses(s: &GadgetStats) {
    assert_eq!(s.misses, 0);
}
