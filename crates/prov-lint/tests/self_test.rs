//! Fixture self-tests: run the real linter over the checked-in fixture
//! workspaces under `tests/fixtures/` and assert exact rule IDs, file:line
//! attribution, messages, waiver accounting, and CLI exit codes. The last
//! test lints the enclosing workspace itself, so `cargo test` enforces the
//! same gate CI does.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn violating_fixture_yields_exact_findings() {
    let report = prov_lint::lint_root(&fixture("violating")).expect("lint runs");
    assert_eq!(report.files, 7, "six src files plus tests/asserts.rs");

    let unwaived: Vec<(&str, &str, usize)> = report
        .unwaived()
        .map(|v| (v.rule, v.file.as_str(), v.line))
        .collect();
    assert_eq!(
        unwaived,
        vec![
            ("drift-bench", "BENCH.json", 3),
            ("zero-alloc", "src/hot.rs", 10),
            ("lock-order", "src/locks.rs", 6),
            ("lock-send", "src/locks.rs", 13),
            ("no-panic", "src/panics.rs", 5),
            ("lint-directive", "src/panics.rs", 13),
            ("drift-stats", "src/stats.rs", 8),
            ("drift-state-version", "src/version.rs", 3),
        ],
    );

    let waived: Vec<(&str, &str, usize, &str)> = report
        .waived()
        .map(|v| {
            (
                v.rule,
                v.file.as_str(),
                v.line,
                v.waived.as_deref().expect("waived"),
            )
        })
        .collect();
    assert_eq!(
        waived,
        vec![
            (
                "no-panic",
                "src/panics.rs",
                10,
                "fixture: caller guarantees Some",
            ),
            (
                "drift-stats",
                "src/stats.rs",
                9,
                "fixture: documented as informational",
            ),
        ],
    );
    assert_eq!(
        report.waiver_tally(),
        vec![("drift-stats", 1), ("no-panic", 1)]
    );
}

#[test]
fn violating_fixture_messages_are_actionable() {
    let report = prov_lint::lint_root(&fixture("violating")).expect("lint runs");
    // First violation per rule in the sorted report (the unwaived one where
    // a rule fires twice).
    let msg = |rule: &str| -> &str {
        &report
            .violations
            .iter()
            .find(|v| v.rule == rule)
            .unwrap_or_else(|| panic!("no `{rule}` finding"))
            .message
    };
    assert_eq!(msg("no-panic"), "`.unwrap()` in a production module");
    assert_eq!(
        msg("zero-alloc"),
        "allocation idiom `.to_vec` inside a zero-alloc region"
    );
    assert_eq!(
        msg("lock-order"),
        "`outer` (rank 0) acquired while holding `inner` (rank 1): \
         declared order is [\"outer\", \"inner\"]"
    );
    assert_eq!(
        msg("lock-send"),
        "blocking send `socket.send` while holding `outer` lock — drain \
         under the lock, flush after unlock"
    );
    assert_eq!(
        msg("lint-directive"),
        "waiver `lint:allow(no-panic)` needs a reason: \
         `lint:allow(no-panic): <why the invariant holds>`"
    );
    assert_eq!(
        msg("drift-stats"),
        "counter `GadgetStats.orphaned` is never asserted in any test"
    );
    assert_eq!(
        msg("drift-bench"),
        "bench metric `speedup_orphaned` has no floor in `src/floors.rs` \
         FLOORS — a regression would go ungated"
    );
    assert_eq!(
        msg("drift-state-version"),
        "`STATE_VERSION` definition has no migration test referencing it"
    );
}

#[test]
fn clean_fixture_passes_with_one_audited_waiver() {
    let report = prov_lint::lint_root(&fixture("clean")).expect("lint runs");
    assert_eq!(report.files, 2);
    assert_eq!(report.unwaived().count(), 0);
    let waived: Vec<_> = report.waived().collect();
    assert_eq!(waived.len(), 1);
    assert_eq!(waived[0].rule, "no-panic");
    assert_eq!(
        waived[0].waived.as_deref(),
        Some("fixture: checked by the caller")
    );
}

#[test]
fn cli_fails_on_violations_and_prints_the_tally() {
    let out = Command::new(env!("CARGO_BIN_EXE_provlight-lint"))
        .arg(fixture("violating"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(
        stdout.contains("no-panic src/panics.rs:5 `.unwrap()` in a production module"),
        "{stdout}"
    );
    assert!(
        stdout.contains("provlight-lint: 7 files, 8 violation(s), 2 waived"),
        "{stdout}"
    );
    assert!(stdout.contains("  waived drift-stats: 1"), "{stdout}");
    assert!(stdout.contains("  waived no-panic: 1"), "{stdout}");
}

#[test]
fn cli_passes_the_clean_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_provlight-lint"))
        .arg(fixture("clean"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(
        stdout.contains("provlight-lint: 2 files, 0 violation(s), 1 waived"),
        "{stdout}"
    );
}

#[test]
fn cli_distinguishes_gate_breakage_from_findings() {
    // A missing root is exit 2 ("the gate is broken"), never exit 1.
    let out = Command::new(env!("CARGO_BIN_EXE_provlight-lint"))
        .arg(fixture("does-not-exist"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn the_workspace_itself_passes_the_gate() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = prov_lint::lint_root(&root).expect("lint runs");
    let bad: Vec<_> = report.unwaived().collect();
    assert!(bad.is_empty(), "unwaived lint violations: {bad:#?}");
}
